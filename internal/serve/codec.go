package serve

import (
	"encoding/binary"
	"fmt"
	"math"

	"datacell/internal/exec"
	"datacell/internal/vector"
)

// This file is the columnar frame codec: result tables and ingest batches
// cross the wire as *blocks* — whole columns appended as raw payload runs,
// encoded straight from vector.Vector payloads or multi-part vector.View
// parts. There is no per-row marshalling and no Value boxing anywhere on
// the path; a string column is the only per-value walk (each string needs
// its length).
//
// Block layout:
//
//	u32 rows | u16 ncols
//	per column:
//	  u8 type | u16 namelen | name bytes | payload
//	payload by type:
//	  Int64/Timestamp  rows × 8 bytes little-endian
//	  Float64          rows × 8 bytes little-endian IEEE-754 bits
//	  Bool             rows × 1 byte (0/1)
//	  Str              rows × (u32 len | bytes)

// --- append-side primitives ------------------------------------------------

func appendU16(b []byte, x uint16) []byte {
	return append(b, byte(x>>8), byte(x))
}

func appendU32(b []byte, x uint32) []byte {
	return append(b, byte(x>>24), byte(x>>16), byte(x>>8), byte(x))
}

func appendU64(b []byte, x uint64) []byte {
	return append(b, byte(x>>56), byte(x>>48), byte(x>>40), byte(x>>32),
		byte(x>>24), byte(x>>16), byte(x>>8), byte(x))
}

func appendI64(b []byte, x int64) []byte { return appendU64(b, uint64(x)) }

// appendStr32 appends a u32-length-prefixed string.
func appendStr32(b []byte, s string) []byte {
	b = appendU32(b, uint32(len(s)))
	return append(b, s...)
}

// appendInt64s bulk-appends a little-endian int64 run. grow-once, then a
// straight store loop — the hot path for BIGINT/TIMESTAMP columns.
func appendInt64s(b []byte, xs []int64) []byte {
	off := len(b)
	b = append(b, make([]byte, 8*len(xs))...)
	for i, x := range xs {
		binary.LittleEndian.PutUint64(b[off+8*i:], uint64(x))
	}
	return b
}

// appendFloat64s bulk-appends a little-endian IEEE-754 run.
func appendFloat64s(b []byte, xs []float64) []byte {
	off := len(b)
	b = append(b, make([]byte, 8*len(xs))...)
	for i, x := range xs {
		binary.LittleEndian.PutUint64(b[off+8*i:], math.Float64bits(x))
	}
	return b
}

// AppendBlockHeader starts a block of rows × ncols; exactly ncols
// column appends must follow, each carrying rows values.
func AppendBlockHeader(b []byte, rows, ncols int) []byte {
	b = appendU32(b, uint32(rows))
	return appendU16(b, uint16(ncols))
}

// AppendViewCol appends one named column from a (possibly multi-part)
// view, part at a time — a boundary-spanning window column is encoded
// without flattening. The view's length must equal the block's row count.
func AppendViewCol(b []byte, name string, v vector.View) []byte {
	b = append(b, byte(v.Type()))
	b = appendU16(b, uint16(len(name)))
	b = append(b, name...)
	for _, p := range v.Parts() {
		switch v.Type() {
		case vector.Int64, vector.Timestamp:
			b = appendInt64s(b, p.Int64s())
		case vector.Float64:
			b = appendFloat64s(b, p.Float64s())
		case vector.Bool:
			for _, x := range p.Bools() {
				if x {
					b = append(b, 1)
				} else {
					b = append(b, 0)
				}
			}
		case vector.Str:
			for _, s := range p.Strs() {
				b = appendStr32(b, s)
			}
		}
	}
	return b
}

// AppendVectorCol appends one named single-part column.
func AppendVectorCol(b []byte, name string, v *vector.Vector) []byte {
	return AppendViewCol(b, name, vector.ViewOf(v))
}

// AppendTable appends an exec.Table as a block. All columns must share
// the table's row count (exec guarantees rectangularity).
func AppendTable(b []byte, t *exec.Table) []byte {
	b = AppendBlockHeader(b, t.NumRows(), len(t.Cols))
	for i, col := range t.Cols {
		b = AppendViewCol(b, t.Names[i], vector.ViewOf(col))
	}
	return b
}

// AppendVectors appends unnamed-or-named columns as a block; names may be
// nil (positional mapping at the receiver) but must otherwise match cols.
func AppendVectors(b []byte, names []string, cols []*vector.Vector) []byte {
	rows := 0
	if len(cols) > 0 {
		rows = cols[0].Len()
	}
	b = AppendBlockHeader(b, rows, len(cols))
	for i, col := range cols {
		name := ""
		if names != nil {
			name = names[i]
		}
		b = AppendVectorCol(b, name, col)
	}
	return b
}

// --- decode side -----------------------------------------------------------

// byteReader walks a payload with bounds checking; the first overrun
// latches ErrTruncated.
type byteReader struct {
	b   []byte
	off int
	err error
}

func (r *byteReader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %s at offset %d of %d", ErrTruncated, what, r.off, len(r.b))
	}
}

func (r *byteReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || len(r.b)-r.off < n {
		r.fail(fmt.Sprintf("%d bytes", n))
		return nil
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out
}

func (r *byteReader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *byteReader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

func (r *byteReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (r *byteReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (r *byteReader) i64() int64 { return int64(r.u64()) }

func (r *byteReader) str32() string {
	n := r.u32()
	b := r.take(int(n))
	if b == nil {
		return ""
	}
	return string(b)
}

func (r *byteReader) str16() string {
	n := r.u16()
	b := r.take(int(n))
	if b == nil {
		return ""
	}
	return string(b)
}

// rest reports whether unread bytes remain.
func (r *byteReader) rest() int { return len(r.b) - r.off }

// Block is a decoded columnar block. Names may contain empty strings
// (positional columns).
type Block struct {
	Names []string
	Cols  []*vector.Vector
}

// NumRows returns the block's row count.
func (b *Block) NumRows() int {
	if len(b.Cols) == 0 {
		return 0
	}
	return b.Cols[0].Len()
}

// Table converts the block into an exec.Table sharing the column storage.
func (b *Block) Table() *exec.Table {
	return &exec.Table{Names: b.Names, Cols: b.Cols}
}

// decodeBlock reads one block from r. Column payloads are validated
// against the header row count; any shortfall (a truncated or corrupt
// frame) fails with ErrTruncated rather than producing a ragged block.
func decodeBlock(r *byteReader) (*Block, error) {
	rows := int(r.u32())
	ncols := int(r.u16())
	if r.err != nil {
		return nil, r.err
	}
	// Sanity floor: a column needs at least 1 byte/row (Bool); reject row
	// counts the remaining payload cannot possibly hold so corrupt headers
	// fail fast instead of allocating rows of scratch.
	if ncols > 0 && rows > r.rest() {
		r.fail(fmt.Sprintf("%d rows × %d cols", rows, ncols))
		return nil, r.err
	}
	blk := &Block{Names: make([]string, ncols), Cols: make([]*vector.Vector, ncols)}
	for c := 0; c < ncols; c++ {
		typ := vector.Type(r.u8())
		if typ > vector.Timestamp {
			if r.err == nil {
				r.err = fmt.Errorf("serve: unknown column type %d", typ)
			}
			return nil, r.err
		}
		blk.Names[c] = r.str16()
		// Bounds-check the column payload against the remaining bytes
		// BEFORE vector.New preallocates rows of capacity — the sanity
		// floor above only guarantees 1 byte/row, so a fixed-width type
		// must not size an allocation off an unvalidated row count.
		var col *vector.Vector
		switch typ {
		case vector.Int64, vector.Timestamp:
			raw := r.take(8 * rows)
			if raw == nil {
				return nil, r.err
			}
			col = vector.New(typ, rows)
			for i := 0; i < rows; i++ {
				col.AppendInt64(int64(binary.LittleEndian.Uint64(raw[8*i:])))
			}
		case vector.Float64:
			raw := r.take(8 * rows)
			if raw == nil {
				return nil, r.err
			}
			col = vector.New(typ, rows)
			for i := 0; i < rows; i++ {
				col.AppendFloat64(math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:])))
			}
		case vector.Bool:
			raw := r.take(rows)
			if raw == nil {
				return nil, r.err
			}
			col = vector.New(typ, rows)
			for i := 0; i < rows; i++ {
				col.AppendBool(raw[i] != 0)
			}
		case vector.Str:
			// Each string needs at least its u32 length prefix.
			if r.rest() < 4*rows {
				r.fail(fmt.Sprintf("%d string rows", rows))
				return nil, r.err
			}
			col = vector.New(typ, rows)
			for i := 0; i < rows; i++ {
				col.AppendStr(r.str32())
			}
			if r.err != nil {
				return nil, r.err
			}
		}
		blk.Cols[c] = col
	}
	return blk, r.err
}

// DecodeBlock decodes a standalone block payload, rejecting trailing
// garbage.
func DecodeBlock(payload []byte) (*Block, error) {
	r := &byteReader{b: payload}
	blk, err := decodeBlock(r)
	if err != nil {
		return nil, err
	}
	if r.rest() != 0 {
		return nil, fmt.Errorf("serve: %d trailing bytes after block", r.rest())
	}
	return blk, nil
}
