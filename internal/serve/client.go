package serve

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"datacell"
	"datacell/internal/vector"
)

// Client errors.
var (
	// ErrClientClosed is returned after Close or a connection failure.
	ErrClientClosed = errors.New("serve: client closed")
	// ErrSubClosed is returned by Recv after Unsubscribe or client close.
	ErrSubClosed = errors.New("serve: subscription closed")
)

// RegisterOptions configure a client subscription.
type RegisterOptions struct {
	// Mode is the continuous query's execution mode (default Incremental).
	Mode datacell.Mode
	// Policy is the server-side slow-consumer policy for this connection
	// (default PolicyBlock).
	Policy Policy
	// Buffer sizes both the server-side frame queue and the client-side
	// result channel (0 = server/client defaults).
	Buffer int
}

// SubResult is one decoded window result.
type SubResult struct {
	// Window is the 1-based window sequence number.
	Window int
	// Emitted is the server's wall clock at encode time.
	Emitted time.Time
	// Latency is the engine's processing time for the step that emitted
	// this window.
	Latency time.Duration
	// Table holds the result rows.
	Table *datacell.Table
}

// Sub is a live subscription. Read results with Recv (or select on C and
// Done). Results stop after Unsubscribe, client Close, or server drain.
type Sub struct {
	// ID is the server-assigned subscription ID.
	ID uint32
	// Fingerprint is the canonical fragment fingerprint of the underlying
	// plan ("" when it has none); equal fingerprints share evaluation
	// inside the engine, equal statements share one encode in the server.
	Fingerprint string

	cl       *Client
	ch       chan *SubResult
	gone     chan struct{}
	goneOnce sync.Once
}

// C returns the result channel. It is closed only when the client's
// reader exits (Close, connection loss, server BYE); after Unsubscribe it
// stays open but silent — use Done or Recv to observe the end.
func (s *Sub) C() <-chan *SubResult { return s.ch }

// Done is closed when the subscription ends for any reason.
func (s *Sub) Done() <-chan struct{} { return s.gone }

// Recv returns the next result, or an error when the subscription ended
// or ctx was cancelled. Buffered results are drained before the end of
// the subscription is reported.
func (s *Sub) Recv(ctx context.Context) (*SubResult, error) {
	select {
	case r, ok := <-s.ch:
		if !ok {
			return nil, s.cl.errOr(ErrSubClosed)
		}
		return r, nil
	default:
	}
	select {
	case r, ok := <-s.ch:
		if !ok {
			return nil, s.cl.errOr(ErrSubClosed)
		}
		return r, nil
	case <-s.gone:
		select {
		case r, ok := <-s.ch:
			if ok {
				return r, nil
			}
		default:
		}
		return nil, s.cl.errOr(ErrSubClosed)
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (s *Sub) end() { s.goneOnce.Do(func() { close(s.gone) }) }

// wireResp is one control-plane response routed by seq.
type wireResp struct {
	t       MsgType
	payload []byte // private copy
}

// Client is a datacelld network client. It is safe for concurrent use;
// one background goroutine reads the socket and demultiplexes control
// responses (by sequence number) and result frames (by subscription ID).
type Client struct {
	c   net.Conn
	wmu sync.Mutex
	bw  *bufio.Writer

	mu      sync.Mutex
	seq     uint32
	pending map[uint32]chan wireResp
	subs    map[uint32]*Sub
	err     error
	closed  bool
	done    chan struct{}
}

// Dial connects and performs the protocol handshake.
func Dial(addr string) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(nc)
}

// NewClient performs the handshake over an existing connection and starts
// the reader.
func NewClient(nc net.Conn) (*Client, error) {
	cl := &Client{
		c:       nc,
		bw:      bufio.NewWriterSize(nc, 1<<16),
		pending: map[uint32]chan wireResp{},
		subs:    map[uint32]*Sub{},
		done:    make(chan struct{}),
	}
	hello := append([]byte(Magic), ProtocolVersion)
	if err := cl.writeFrame(MsgHello, hello); err != nil {
		nc.Close()
		return nil, err
	}
	// The handshake reply is read synchronously, before the reader starts.
	br := bufio.NewReaderSize(nc, 1<<16)
	t, payload, _, err := ReadFrame(br, nil)
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("serve: handshake: %w", err)
	}
	if t != MsgOK {
		nc.Close()
		if t == MsgError {
			r := &byteReader{b: payload}
			r.u32()
			return nil, fmt.Errorf("serve: handshake rejected: %s", r.str32())
		}
		return nil, fmt.Errorf("serve: handshake: unexpected reply 0x%02x", uint8(t))
	}
	go cl.readLoop(br)
	return cl, nil
}

func (cl *Client) writeFrame(t MsgType, payload []byte) error {
	cl.wmu.Lock()
	defer cl.wmu.Unlock()
	if err := WriteFrame(cl.bw, t, payload); err != nil {
		return err
	}
	return cl.bw.Flush()
}

// errOr returns the client's terminal error, or fallback while healthy.
func (cl *Client) errOr(fallback error) error {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if cl.err != nil {
		return cl.err
	}
	return fallback
}

// fail ends the client: the terminal error is latched, every pending
// request and subscription is released, and the socket is closed.
// Subscription channels are NOT closed here — fail can run off the reader
// goroutine (Close, a write failure) while the reader is blocked sending
// on a full sub.ch, and closing the channel under that send would panic.
// Ending the subs (close gone) unblocks the reader; closing the socket
// makes its next read fail; its exit path closes the channels.
func (cl *Client) fail(err error) {
	cl.mu.Lock()
	if cl.closed {
		cl.mu.Unlock()
		return
	}
	cl.closed = true
	cl.err = err
	pending := cl.pending
	cl.pending = map[uint32]chan wireResp{}
	subs := make([]*Sub, 0, len(cl.subs))
	for _, s := range cl.subs {
		subs = append(subs, s)
	}
	cl.mu.Unlock()
	close(cl.done)
	for _, ch := range pending {
		close(ch)
	}
	for _, s := range subs {
		s.end()
	}
	cl.c.Close()
}

// closeSubs runs when the reader goroutine exits. The reader is the only
// sender on subscription channels, so it is the sole closer; by the time
// it exits, fail has latched the terminal error (every reader exit path
// calls fail first), so Recv on a closed channel reports that error.
func (cl *Client) closeSubs() {
	cl.mu.Lock()
	subs := cl.subs
	cl.subs = map[uint32]*Sub{}
	cl.mu.Unlock()
	for _, s := range subs {
		s.end()
		close(s.ch)
	}
}

// Close shuts the client down. Active subscriptions end with ErrSubClosed.
func (cl *Client) Close() error {
	cl.fail(ErrClientClosed)
	return nil
}

// readLoop demultiplexes server frames until the connection ends.
func (cl *Client) readLoop(br *bufio.Reader) {
	defer cl.closeSubs()
	var buf []byte
	for {
		t, payload, nbuf, err := ReadFrame(br, buf)
		buf = nbuf
		if err != nil {
			cl.fail(fmt.Errorf("serve: connection lost: %w", err))
			return
		}
		switch t {
		case MsgResult:
			r := &byteReader{b: payload}
			subID := r.u32()
			window := r.u64()
			emit := r.i64()
			latency := r.i64()
			blk, derr := decodeBlock(r)
			if derr != nil {
				cl.fail(fmt.Errorf("serve: bad result frame: %w", derr))
				return
			}
			cl.mu.Lock()
			sub := cl.subs[subID]
			cl.mu.Unlock()
			if sub == nil {
				continue // flushed after unsubscribe; drop
			}
			res := &SubResult{
				Window:  int(window),
				Emitted: time.UnixMicro(emit),
				Latency: time.Duration(latency),
				Table:   blk.Table(),
			}
			select {
			case sub.ch <- res:
			case <-sub.gone:
			}
		case MsgBye:
			r := &byteReader{b: payload}
			cl.fail(fmt.Errorf("serve: server closed the connection: %s", r.str32()))
			return
		default:
			r := &byteReader{b: payload}
			seq := r.u32()
			if r.err != nil {
				cl.fail(fmt.Errorf("serve: bad frame: %w", r.err))
				return
			}
			cl.mu.Lock()
			ch := cl.pending[seq]
			delete(cl.pending, seq)
			cl.mu.Unlock()
			if ch != nil {
				cp := make([]byte, len(payload))
				copy(cp, payload)
				ch <- wireResp{t: t, payload: cp}
			}
		}
	}
}

// request issues one control frame and waits for its response.
func (cl *Client) request(t MsgType, build func(seq uint32) []byte) (wireResp, error) {
	cl.mu.Lock()
	if cl.closed {
		cl.mu.Unlock()
		return wireResp{}, cl.errOr(ErrClientClosed)
	}
	cl.seq++
	seq := cl.seq
	ch := make(chan wireResp, 1)
	cl.pending[seq] = ch
	cl.mu.Unlock()
	if err := cl.writeFrame(t, build(seq)); err != nil {
		cl.mu.Lock()
		delete(cl.pending, seq)
		cl.mu.Unlock()
		cl.fail(fmt.Errorf("serve: write failed: %w", err))
		return wireResp{}, cl.errOr(err)
	}
	resp, ok := <-ch
	if !ok {
		return wireResp{}, cl.errOr(ErrClientClosed)
	}
	return resp, nil
}

// respErr converts a MsgError response into a Go error.
func respErr(resp wireResp) error {
	r := &byteReader{b: resp.payload}
	r.u32()
	return errors.New(r.str32())
}

// Ping round-trips a no-op frame.
func (cl *Client) Ping() error {
	resp, err := cl.request(MsgPing, func(seq uint32) []byte { return appendU32(nil, seq) })
	if err != nil {
		return err
	}
	if resp.t == MsgError {
		return respErr(resp)
	}
	return nil
}

// Stmt executes a statement: DDL returns a detail line, a one-shot SELECT
// returns a table.
func (cl *Client) Stmt(sql string) (string, *datacell.Table, error) {
	resp, err := cl.request(MsgStmt, func(seq uint32) []byte {
		return appendStr32(appendU32(nil, seq), sql)
	})
	if err != nil {
		return "", nil, err
	}
	switch resp.t {
	case MsgOK:
		r := &byteReader{b: resp.payload}
		r.u32()
		return r.str32(), nil, r.err
	case MsgTable:
		r := &byteReader{b: resp.payload}
		r.u32()
		blk, err := decodeBlock(r)
		if err != nil {
			return "", nil, err
		}
		return "", blk.Table(), nil
	case MsgError:
		return "", nil, respErr(resp)
	}
	return "", nil, fmt.Errorf("serve: unexpected reply 0x%02x", uint8(resp.t))
}

// Queries returns the server's query listing (sorted by ID).
func (cl *Client) Queries() (string, error) {
	resp, err := cl.request(MsgQueries, func(seq uint32) []byte { return appendU32(nil, seq) })
	if err != nil {
		return "", err
	}
	if resp.t == MsgError {
		return "", respErr(resp)
	}
	r := &byteReader{b: resp.payload}
	r.u32()
	return r.str32(), r.err
}

// Register installs a continuous query and subscribes this connection to
// its window results.
func (cl *Client) Register(sql string, opts RegisterOptions) (*Sub, error) {
	resp, err := cl.request(MsgRegister, func(seq uint32) []byte {
		b := appendU32(nil, seq)
		b = append(b, byte(opts.Mode), byte(opts.Policy))
		b = appendU32(b, uint32(opts.Buffer))
		return appendStr32(b, sql)
	})
	if err != nil {
		return nil, err
	}
	if resp.t == MsgError {
		return nil, respErr(resp)
	}
	if resp.t != MsgSubscribed {
		return nil, fmt.Errorf("serve: unexpected reply 0x%02x", uint8(resp.t))
	}
	r := &byteReader{b: resp.payload}
	r.u32()
	subID := r.u32()
	fp := r.str32()
	if r.err != nil {
		return nil, r.err
	}
	buffer := opts.Buffer
	if buffer <= 0 {
		buffer = 16
	} else if buffer > 65536 {
		buffer = 65536 // never size a channel off an unbounded request
	}
	sub := &Sub{
		ID:          subID,
		Fingerprint: fp,
		cl:          cl,
		ch:          make(chan *SubResult, buffer),
		gone:        make(chan struct{}),
	}
	cl.mu.Lock()
	if cl.closed {
		cl.mu.Unlock()
		return nil, cl.errOr(ErrClientClosed)
	}
	cl.subs[subID] = sub
	cl.mu.Unlock()
	return sub, nil
}

// Unsubscribe detaches a subscription server-side and ends it locally.
func (cl *Client) Unsubscribe(sub *Sub) error {
	resp, err := cl.request(MsgUnsubscribe, func(seq uint32) []byte {
		return appendU32(appendU32(nil, seq), sub.ID)
	})
	cl.mu.Lock()
	delete(cl.subs, sub.ID)
	cl.mu.Unlock()
	sub.end()
	if err != nil {
		return err
	}
	if resp.t == MsgError {
		return respErr(resp)
	}
	return nil
}

// Append ingests a columnar batch into a stream. names may be nil for
// positional mapping onto the stream schema; cols must be rectangular.
func (cl *Client) Append(stream string, names []string, cols []*vector.Vector) error {
	return cl.append(0, stream, names, cols)
}

// InsertTable inserts a columnar batch into a persistent table.
func (cl *Client) InsertTable(table string, names []string, cols []*vector.Vector) error {
	return cl.append(1, table, names, cols)
}

func (cl *Client) append(kind byte, target string, names []string, cols []*vector.Vector) error {
	resp, err := cl.request(MsgAppend, func(seq uint32) []byte {
		b := appendU32(nil, seq)
		b = append(b, kind)
		b = appendStr32(b, target)
		return AppendVectors(b, names, cols)
	})
	if err != nil {
		return err
	}
	if resp.t == MsgError {
		return respErr(resp)
	}
	return nil
}
