package sql

import (
	"fmt"
	"strings"
	"time"
)

// Node is any AST node.
type Node interface{ sqlNode() }

// SelectStmt is a single-block SELECT with optional window clauses on its
// FROM items.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     []TableRef
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    int64 // -1 when absent
}

func (*SelectStmt) sqlNode() {}

// SelectItem is one projection: an expression with an optional alias, or
// the star.
type SelectItem struct {
	Star  bool
	Expr  Expr
	Alias string
}

// TableRef names a stream or table in FROM, optionally windowed.
type TableRef struct {
	Name   string
	Alias  string
	Window *WindowSpec
}

// RefName returns the name this source is referenced by (alias if given).
func (t TableRef) RefName() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name
}

// WindowKind distinguishes the window families of the paper.
type WindowKind uint8

const (
	// CountWindow slides per tuple count.
	CountWindow WindowKind = iota
	// TimeWindow slides per wall-clock interval using tuple timestamps.
	TimeWindow
	// LandmarkWindow grows from a fixed start; only Slide applies.
	LandmarkWindow
)

// String names the window kind.
func (k WindowKind) String() string {
	switch k {
	case CountWindow:
		return "COUNT"
	case TimeWindow:
		return "TIME"
	case LandmarkWindow:
		return "LANDMARK"
	}
	return "?"
}

// WindowSpec is the parsed [RANGE .. SLIDE ..] clause. For CountWindow,
// Rows/SlideRows are tuple counts; for TimeWindow, Dur/SlideDur are
// durations; for LandmarkWindow only the slide fields are meaningful.
type WindowSpec struct {
	Kind      WindowKind
	Rows      int64
	SlideRows int64
	Dur       time.Duration
	SlideDur  time.Duration
}

// String renders the clause.
func (w *WindowSpec) String() string {
	switch w.Kind {
	case CountWindow:
		return fmt.Sprintf("[RANGE %d SLIDE %d]", w.Rows, w.SlideRows)
	case TimeWindow:
		return fmt.Sprintf("[RANGE %s SLIDE %s]", w.Dur, w.SlideDur)
	case LandmarkWindow:
		if w.SlideDur > 0 {
			return fmt.Sprintf("[LANDMARK SLIDE %s]", w.SlideDur)
		}
		return fmt.Sprintf("[LANDMARK SLIDE %d]", w.SlideRows)
	}
	return "[?]"
}

// OrderItem is one ORDER BY term.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// Expr is an AST scalar expression.
type Expr interface {
	Node
	String() string
}

// Ident is a possibly qualified column reference.
type Ident struct {
	Qualifier string // stream/table (or alias), may be empty
	Name      string
}

func (*Ident) sqlNode() {}

func (i *Ident) String() string {
	if i.Qualifier != "" {
		return i.Qualifier + "." + i.Name
	}
	return i.Name
}

// NumberLit is an integer or float literal.
type NumberLit struct {
	Text    string
	IsFloat bool
	Int     int64
	Float   float64
}

func (*NumberLit) sqlNode() {}

func (n *NumberLit) String() string { return n.Text }

// StringLit is a quoted string.
type StringLit struct{ Val string }

func (*StringLit) sqlNode() {}

func (s *StringLit) String() string { return "'" + strings.ReplaceAll(s.Val, "'", "''") + "'" }

// BoolLit is TRUE or FALSE.
type BoolLit struct{ Val bool }

func (*BoolLit) sqlNode() {}

func (b *BoolLit) String() string {
	if b.Val {
		return "TRUE"
	}
	return "FALSE"
}

// BinExpr is a binary operation; Op is one of + - * / % < <= > >= = <> AND OR.
type BinExpr struct {
	Op   string
	L, R Expr
}

func (*BinExpr) sqlNode() {}

func (b *BinExpr) String() string {
	return "(" + b.L.String() + " " + b.Op + " " + b.R.String() + ")"
}

// UnaryExpr is NOT or unary minus.
type UnaryExpr struct {
	Op string // "NOT" or "-"
	E  Expr
}

func (*UnaryExpr) sqlNode() {}

func (u *UnaryExpr) String() string { return "(" + u.Op + " " + u.E.String() + ")" }

// FuncCall is an aggregate or scalar function call; Star marks count(*).
type FuncCall struct {
	Name string // lower-cased
	Star bool
	Args []Expr
}

func (*FuncCall) sqlNode() {}

func (f *FuncCall) String() string {
	if f.Star {
		return f.Name + "(*)"
	}
	args := make([]string, len(f.Args))
	for i, a := range f.Args {
		args[i] = a.String()
	}
	return f.Name + "(" + strings.Join(args, ", ") + ")"
}

// AggFuncs lists the supported aggregate function names.
var AggFuncs = map[string]bool{
	"sum": true, "count": true, "avg": true, "min": true, "max": true,
}

// ContainsAggregate reports whether e contains an aggregate call.
func ContainsAggregate(e Expr) bool {
	switch t := e.(type) {
	case *FuncCall:
		if AggFuncs[t.Name] {
			return true
		}
		for _, a := range t.Args {
			if ContainsAggregate(a) {
				return true
			}
		}
	case *BinExpr:
		return ContainsAggregate(t.L) || ContainsAggregate(t.R)
	case *UnaryExpr:
		return ContainsAggregate(t.E)
	}
	return false
}
