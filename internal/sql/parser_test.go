package sql

import (
	"strings"
	"testing"
	"time"
)

func mustParse(t *testing.T, q string) *SelectStmt {
	t.Helper()
	stmt, err := Parse(q)
	if err != nil {
		t.Fatalf("Parse(%q): %v", q, err)
	}
	return stmt
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex("SELECT x1, sum(x2) FROM s WHERE x1 > 10.5 AND name = 'it''s'")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokKind
	for _, tk := range toks {
		kinds = append(kinds, tk.Kind)
	}
	if toks[0].Text != "SELECT" || toks[0].Kind != TokKeyword {
		t.Errorf("first token: %+v", toks[0])
	}
	if toks[1].Text != "x1" || toks[1].Kind != TokIdent {
		t.Errorf("ident token: %+v", toks[1])
	}
	last := toks[len(toks)-2]
	if last.Kind != TokString || last.Text != "it's" {
		t.Errorf("string literal: %+v", last)
	}
	if toks[len(toks)-1].Kind != TokEOF {
		t.Error("missing EOF token")
	}
	_ = kinds
}

func TestLexNumbers(t *testing.T) {
	toks, err := Lex("1 2.5 1e3 2.5E-2 .5")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"1", "2.5", "1e3", "2.5E-2", ".5"}
	for i, w := range want {
		if toks[i].Kind != TokNumber || toks[i].Text != w {
			t.Errorf("number %d: %+v want %q", i, toks[i], w)
		}
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := Lex("select '` + \"`\" + `unterminated"); err == nil {
		t.Error("unterminated string should fail")
	}
	if _, err := Lex("select #"); err == nil {
		t.Error("bad character should fail")
	}
}

func TestLexCaseNormalization(t *testing.T) {
	toks, err := Lex("SeLeCt Foo")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != "SELECT" {
		t.Errorf("keyword not upper-cased: %q", toks[0].Text)
	}
	if toks[1].Text != "foo" {
		t.Errorf("ident not lower-cased: %q", toks[1].Text)
	}
}

func TestParseQuery1(t *testing.T) {
	// The paper's Q1.
	stmt := mustParse(t, `SELECT x1, sum(x2) FROM stream [RANGE 1000 SLIDE 100] WHERE x1 > 5 GROUP BY x1`)
	if len(stmt.Items) != 2 {
		t.Fatalf("items: %d", len(stmt.Items))
	}
	if _, ok := stmt.Items[0].Expr.(*Ident); !ok {
		t.Error("item 0 should be ident")
	}
	fc, ok := stmt.Items[1].Expr.(*FuncCall)
	if !ok || fc.Name != "sum" || len(fc.Args) != 1 {
		t.Errorf("item 1: %+v", stmt.Items[1].Expr)
	}
	if len(stmt.From) != 1 || stmt.From[0].Name != "stream" {
		t.Errorf("from: %+v", stmt.From)
	}
	w := stmt.From[0].Window
	if w == nil || w.Kind != CountWindow || w.Rows != 1000 || w.SlideRows != 100 {
		t.Errorf("window: %+v", w)
	}
	if stmt.Where == nil || len(stmt.GroupBy) != 1 {
		t.Error("where/groupby missing")
	}
}

func TestParseQuery2MultiStream(t *testing.T) {
	// The paper's Q2.
	stmt := mustParse(t, `SELECT max(s1.x1), avg(s2.x1)
		FROM stream1 s1 [RANGE 1024 SLIDE 16], stream2 s2 [RANGE 1024 SLIDE 16]
		WHERE s1.x2 = s2.x2`)
	if len(stmt.From) != 2 {
		t.Fatalf("from count: %d", len(stmt.From))
	}
	if stmt.From[0].RefName() != "s1" || stmt.From[1].RefName() != "s2" {
		t.Errorf("aliases: %v %v", stmt.From[0], stmt.From[1])
	}
	be, ok := stmt.Where.(*BinExpr)
	if !ok || be.Op != "=" {
		t.Fatalf("where: %+v", stmt.Where)
	}
	l := be.L.(*Ident)
	if l.Qualifier != "s1" || l.Name != "x2" {
		t.Errorf("qualified ident: %+v", l)
	}
}

func TestParseAliasAfterWindow(t *testing.T) {
	stmt := mustParse(t, `SELECT s.a FROM str [RANGE 10] s`)
	if stmt.From[0].RefName() != "s" {
		t.Errorf("alias after window: %+v", stmt.From[0])
	}
}

func TestParseTumblingDefault(t *testing.T) {
	stmt := mustParse(t, `SELECT a FROM s [RANGE 100]`)
	w := stmt.From[0].Window
	if w.SlideRows != 100 {
		t.Errorf("tumbling slide: %+v", w)
	}
}

func TestParseTimeWindow(t *testing.T) {
	stmt := mustParse(t, `SELECT a FROM s [RANGE 10 SECONDS SLIDE 2 SECONDS]`)
	w := stmt.From[0].Window
	if w.Kind != TimeWindow || w.Dur != 10*time.Second || w.SlideDur != 2*time.Second {
		t.Errorf("time window: %+v", w)
	}
	stmt = mustParse(t, `SELECT a FROM s [RANGE 1 HOUR SLIDE 10 MINUTES]`)
	w = stmt.From[0].Window
	if w.Dur != time.Hour || w.SlideDur != 10*time.Minute {
		t.Errorf("hour window: %+v", w)
	}
}

func TestParseLandmark(t *testing.T) {
	stmt := mustParse(t, `SELECT max(x1) FROM s [LANDMARK SLIDE 500]`)
	w := stmt.From[0].Window
	if w.Kind != LandmarkWindow || w.SlideRows != 500 {
		t.Errorf("landmark: %+v", w)
	}
	stmt = mustParse(t, `SELECT max(x1) FROM s [LANDMARK SLIDE 5 SECONDS]`)
	if stmt.From[0].Window.SlideDur != 5*time.Second {
		t.Errorf("landmark time: %+v", stmt.From[0].Window)
	}
}

func TestParseWindowValidation(t *testing.T) {
	bad := []string{
		`SELECT a FROM s [RANGE 0 SLIDE 1]`,
		`SELECT a FROM s [RANGE 10 SLIDE 20]`,
		`SELECT a FROM s [RANGE 10 SLIDE 3]`, // not a divisor
		`SELECT a FROM s [RANGE 10 SLIDE 2 SECONDS]`,
		`SELECT a FROM s [RANGE 10 SECONDS SLIDE 3 SECONDS]`,
		`SELECT a FROM s [LANDMARK SLIDE 0]`,
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("expected error for %q", q)
		}
	}
}

func TestParseExpressionPrecedence(t *testing.T) {
	stmt := mustParse(t, `SELECT a FROM s WHERE a + 2 * 3 > 7 AND b < 1 OR c = 2`)
	// ((a + (2*3)) > 7 AND b<1) OR c=2
	or, ok := stmt.Where.(*BinExpr)
	if !ok || or.Op != "OR" {
		t.Fatalf("top is %v", stmt.Where)
	}
	and := or.L.(*BinExpr)
	if and.Op != "AND" {
		t.Fatalf("left of OR should be AND: %v", and)
	}
	gt := and.L.(*BinExpr)
	if gt.Op != ">" {
		t.Fatalf("expected >: %v", gt)
	}
	add := gt.L.(*BinExpr)
	if add.Op != "+" {
		t.Fatalf("expected +: %v", add)
	}
	mul := add.R.(*BinExpr)
	if mul.Op != "*" {
		t.Fatalf("expected * under +: %v", mul)
	}
}

func TestParseBetween(t *testing.T) {
	stmt := mustParse(t, `SELECT a FROM s WHERE a BETWEEN 1 AND 5`)
	and := stmt.Where.(*BinExpr)
	if and.Op != "AND" {
		t.Fatalf("between should desugar to AND: %v", and)
	}
	if and.L.(*BinExpr).Op != ">=" || and.R.(*BinExpr).Op != "<=" {
		t.Errorf("between bounds: %v", and)
	}
}

func TestParseNotAndNegation(t *testing.T) {
	stmt := mustParse(t, `SELECT a FROM s WHERE NOT a > 5`)
	u, ok := stmt.Where.(*UnaryExpr)
	if !ok || u.Op != "NOT" {
		t.Fatalf("not: %v", stmt.Where)
	}
	stmt = mustParse(t, `SELECT -a FROM s WHERE a <> -5`)
	if _, ok := stmt.Items[0].Expr.(*UnaryExpr); !ok {
		t.Errorf("unary minus on column: %v", stmt.Items[0].Expr)
	}
	ne := stmt.Where.(*BinExpr)
	num := ne.R.(*NumberLit)
	if num.Int != -5 {
		t.Errorf("negative literal folded: %+v", num)
	}
}

func TestParseNotEqualVariants(t *testing.T) {
	for _, q := range []string{`SELECT a FROM s WHERE a <> 1`, `SELECT a FROM s WHERE a != 1`} {
		stmt := mustParse(t, q)
		if stmt.Where.(*BinExpr).Op != "<>" {
			t.Errorf("%q: op %v", q, stmt.Where.(*BinExpr).Op)
		}
	}
}

func TestParseCountStarAndDistinct(t *testing.T) {
	stmt := mustParse(t, `SELECT DISTINCT count(*) c FROM s`)
	if !stmt.Distinct {
		t.Error("distinct flag")
	}
	fc := stmt.Items[0].Expr.(*FuncCall)
	if !fc.Star || fc.Name != "count" {
		t.Errorf("count(*): %+v", fc)
	}
	if stmt.Items[0].Alias != "c" {
		t.Errorf("implicit alias: %q", stmt.Items[0].Alias)
	}
}

func TestParseOrderLimit(t *testing.T) {
	stmt := mustParse(t, `SELECT a, b FROM s ORDER BY a DESC, b LIMIT 10`)
	if len(stmt.OrderBy) != 2 || !stmt.OrderBy[0].Desc || stmt.OrderBy[1].Desc {
		t.Errorf("orderby: %+v", stmt.OrderBy)
	}
	if stmt.Limit != 10 {
		t.Errorf("limit: %d", stmt.Limit)
	}
	stmt = mustParse(t, `SELECT a FROM s`)
	if stmt.Limit != -1 {
		t.Error("absent limit should be -1")
	}
}

func TestParseHaving(t *testing.T) {
	stmt := mustParse(t, `SELECT a, sum(b) FROM s GROUP BY a HAVING sum(b) > 10`)
	if stmt.Having == nil || !ContainsAggregate(stmt.Having) {
		t.Errorf("having: %v", stmt.Having)
	}
}

func TestParseStar(t *testing.T) {
	stmt := mustParse(t, `SELECT * FROM s [RANGE 5]`)
	if !stmt.Items[0].Star {
		t.Error("star item")
	}
}

func TestParseSemicolonAndTrailingGarbage(t *testing.T) {
	mustParse(t, `SELECT a FROM s;`)
	if _, err := Parse(`SELECT a FROM s extra garbage`); err == nil {
		t.Error("trailing garbage should error")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`SELECT`,
		`SELECT FROM s`,
		`SELECT a`,
		`SELECT a FROM`,
		`SELECT a FROM s WHERE`,
		`SELECT a FROM s GROUP a`,
		`SELECT a FROM s [RANGE]`,
		`SELECT a FROM s [RANGE 10 SLIDE 5`,
		`SELECT sum( FROM s`,
		`SELECT a FROM s LIMIT -3`,
		`SELECT a FROM s ORDER a`,
		`SELECT (a FROM s`,
		`SELECT a. FROM s`,
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("expected parse error for %q", q)
		} else if !strings.Contains(err.Error(), "sql:") {
			t.Errorf("error for %q should be tagged: %v", q, err)
		}
	}
}

func TestContainsAggregate(t *testing.T) {
	stmt := mustParse(t, `SELECT sum(a) + 1, a * 2, min(b + c) FROM s`)
	if !ContainsAggregate(stmt.Items[0].Expr) {
		t.Error("sum(a)+1 should contain aggregate")
	}
	if ContainsAggregate(stmt.Items[1].Expr) {
		t.Error("a*2 should not contain aggregate")
	}
	if !ContainsAggregate(stmt.Items[2].Expr) {
		t.Error("min(b+c) should contain aggregate")
	}
	if ContainsAggregate(&UnaryExpr{Op: "-", E: &Ident{Name: "x"}}) {
		t.Error("unary non-agg")
	}
	if !ContainsAggregate(&UnaryExpr{Op: "-", E: &FuncCall{Name: "sum", Args: []Expr{&Ident{Name: "x"}}}}) {
		t.Error("unary agg")
	}
}

func TestASTStringRoundTrips(t *testing.T) {
	cases := []struct{ in, out string }{
		{`SELECT a FROM s WHERE a > 5 AND b < 3`, `((a > 5) AND (b < 3))`},
		{`SELECT a FROM s WHERE s.a = 'x''y'`, `(s.a = 'x''y')`},
		{`SELECT a FROM s WHERE NOT TRUE`, `(NOT TRUE)`},
		{`SELECT a FROM s WHERE FALSE OR a=1`, `(FALSE OR (a = 1))`},
	}
	for _, c := range cases {
		stmt := mustParse(t, c.in)
		if got := stmt.Where.String(); got != c.out {
			t.Errorf("%q => %q want %q", c.in, got, c.out)
		}
	}
	fc := &FuncCall{Name: "sum", Args: []Expr{&Ident{Name: "x"}}}
	if fc.String() != "sum(x)" {
		t.Errorf("funcall string: %q", fc.String())
	}
	star := &FuncCall{Name: "count", Star: true}
	if star.String() != "count(*)" {
		t.Errorf("count(*) string: %q", star.String())
	}
}

func TestWindowSpecString(t *testing.T) {
	w := &WindowSpec{Kind: CountWindow, Rows: 10, SlideRows: 2}
	if w.String() != "[RANGE 10 SLIDE 2]" {
		t.Errorf("count window string: %q", w.String())
	}
	w = &WindowSpec{Kind: TimeWindow, Dur: time.Second, SlideDur: time.Second}
	if !strings.Contains(w.String(), "RANGE") {
		t.Errorf("time window string: %q", w.String())
	}
	w = &WindowSpec{Kind: LandmarkWindow, SlideRows: 7}
	if w.String() != "[LANDMARK SLIDE 7]" {
		t.Errorf("landmark string: %q", w.String())
	}
	w = &WindowSpec{Kind: LandmarkWindow, SlideDur: time.Second}
	if w.String() != "[LANDMARK SLIDE 1s]" {
		t.Errorf("landmark dur string: %q", w.String())
	}
	if CountWindow.String() != "COUNT" || TimeWindow.String() != "TIME" || LandmarkWindow.String() != "LANDMARK" {
		t.Error("window kind names")
	}
}
