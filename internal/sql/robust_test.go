package sql

import (
	"math/rand"
	"strings"
	"testing"
)

// TestParserNeverPanics feeds the parser mutated fragments of valid
// queries and arbitrary token soup; it must always return (result, error),
// never panic.
func TestParserNeverPanics(t *testing.T) {
	seeds := []string{
		`SELECT x1, sum(x2) FROM s [RANGE 1000 SLIDE 100] WHERE x1 > 5 GROUP BY x1`,
		`SELECT max(a.x), avg(b.y) FROM a [RANGE 10 SECONDS SLIDE 2 SECONDS], b [RANGE 10 SECONDS SLIDE 2 SECONDS] WHERE a.k = b.k`,
		`SELECT DISTINCT x FROM s [LANDMARK SLIDE 5] HAVING count(*) > 1 ORDER BY x DESC LIMIT 3;`,
		`SELECT a + b * -c / 2 % 3 FROM s WHERE a BETWEEN 1 AND 9 AND NOT b = 'it''s'`,
	}
	tokens := []string{
		"SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "LIMIT",
		"[", "]", "(", ")", ",", ";", "+", "-", "*", "/", "%", "<", "<=", ">",
		">=", "=", "<>", "RANGE", "SLIDE", "LANDMARK", "SECONDS", "AND", "OR",
		"NOT", "BETWEEN", "sum", "x1", "s", "1", "2.5", "'str'", "*", ".",
	}
	rng := rand.New(rand.NewSource(2013))

	tryParse := func(q string) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("parser panicked on %q: %v", q, r)
			}
		}()
		_, _ = Parse(q)
	}

	for _, s := range seeds {
		tryParse(s)
		// Truncations at every byte offset.
		for i := 0; i <= len(s); i += 3 {
			tryParse(s[:i])
		}
		// Random single-token deletions and swaps.
		words := strings.Fields(s)
		for trial := 0; trial < 50; trial++ {
			w := append([]string(nil), words...)
			switch rng.Intn(3) {
			case 0:
				if len(w) > 1 {
					i := rng.Intn(len(w))
					w = append(w[:i], w[i+1:]...)
				}
			case 1:
				i, j := rng.Intn(len(w)), rng.Intn(len(w))
				w[i], w[j] = w[j], w[i]
			case 2:
				i := rng.Intn(len(w))
				w[i] = tokens[rng.Intn(len(tokens))]
			}
			tryParse(strings.Join(w, " "))
		}
	}
	// Pure token soup.
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(20)
		parts := make([]string, n)
		for i := range parts {
			parts[i] = tokens[rng.Intn(len(tokens))]
		}
		tryParse(strings.Join(parts, " "))
	}
}

// TestLexNeverPanics exercises the lexer with arbitrary byte strings.
func TestLexNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 500; trial++ {
		n := rng.Intn(60)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(rng.Intn(128))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("lexer panicked on %q: %v", b, r)
				}
			}()
			_, _ = Lex(string(b))
		}()
	}
}
