// Package sql implements the SQL dialect of the reproduction: standard
// single-block SELECT queries extended with the DataCell window clause
//
//	FROM src [RANGE 1000 SLIDE 100]           -- count-based sliding window
//	FROM src [RANGE 10 SECONDS SLIDE 1 SECONDS] -- time-based window
//	FROM src [RANGE 1000]                     -- tumbling (slide = range)
//	FROM src [LANDMARK SLIDE 100]             -- landmark window
//
// mirroring the continuous-query constructs the paper adds to MonetDB/SQL.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// TokKind classifies lexer tokens.
type TokKind uint8

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokKeyword
	TokNumber
	TokString
	TokSymbol // punctuation and operators
)

// Token is one lexical unit with its source position (byte offset).
type Token struct {
	Kind TokKind
	Text string // keywords are upper-cased, identifiers lower-cased
	Pos  int
}

func (t Token) String() string {
	if t.Kind == TokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.Text)
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "LIMIT": true, "AS": true, "AND": true,
	"OR": true, "NOT": true, "ASC": true, "DESC": true, "DISTINCT": true,
	"RANGE": true, "SLIDE": true, "LANDMARK": true, "TRUE": true, "FALSE": true,
	"SECONDS": true, "MILLISECONDS": true, "MINUTES": true, "HOURS": true,
	"BETWEEN": true, "SECOND": true, "MILLISECOND": true, "MINUTE": true, "HOUR": true,
}

// Lex splits input into tokens. It returns an error with byte position on
// any character it cannot tokenize.
func Lex(input string) ([]Token, error) {
	var toks []Token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case unicode.IsDigit(rune(c)) || (c == '.' && i+1 < n && unicode.IsDigit(rune(input[i+1]))):
			start := i
			seenDot := false
			seenExp := false
			for i < n {
				d := input[i]
				if unicode.IsDigit(rune(d)) {
					i++
					continue
				}
				if d == '.' && !seenDot && !seenExp {
					seenDot = true
					i++
					continue
				}
				if (d == 'e' || d == 'E') && !seenExp && i > start {
					seenExp = true
					i++
					if i < n && (input[i] == '+' || input[i] == '-') {
						i++
					}
					continue
				}
				break
			}
			toks = append(toks, Token{Kind: TokNumber, Text: input[start:i], Pos: start})
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						i += 2
						continue
					}
					closed = true
					i++
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("sql: unterminated string literal at offset %d", start)
			}
			toks = append(toks, Token{Kind: TokString, Text: sb.String(), Pos: start})
		case isIdentStart(c):
			start := i
			for i < n && isIdentPart(input[i]) {
				i++
			}
			word := input[start:i]
			upper := strings.ToUpper(word)
			if keywords[upper] {
				toks = append(toks, Token{Kind: TokKeyword, Text: upper, Pos: start})
			} else {
				toks = append(toks, Token{Kind: TokIdent, Text: strings.ToLower(word), Pos: start})
			}
		default:
			start := i
			// Two-character operators first.
			if i+1 < n {
				two := input[i : i+2]
				switch two {
				case "<=", ">=", "<>", "!=":
					toks = append(toks, Token{Kind: TokSymbol, Text: two, Pos: start})
					i += 2
					continue
				}
			}
			switch c {
			case ',', '(', ')', '[', ']', '*', '+', '-', '/', '%', '<', '>', '=', '.', ';':
				toks = append(toks, Token{Kind: TokSymbol, Text: string(c), Pos: start})
				i++
			default:
				return nil, fmt.Errorf("sql: unexpected character %q at offset %d", c, i)
			}
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Pos: n})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}
