package sql

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Parse parses a single SELECT statement (with optional trailing semicolon).
func Parse(input string) (*SelectStmt, error) {
	toks, err := Lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	p.accept(TokSymbol, ";")
	if !p.at(TokEOF, "") {
		return nil, p.errorf("unexpected %s after statement", p.peek())
	}
	return stmt, nil
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) peek() Token { return p.toks[p.pos] }

func (p *parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

func (p *parser) at(kind TokKind, text string) bool {
	t := p.peek()
	return t.Kind == kind && (text == "" || t.Text == text)
}

func (p *parser) accept(kind TokKind, text string) bool {
	if p.at(kind, text) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(kind TokKind, text string) (Token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	want := text
	if want == "" {
		want = fmt.Sprintf("token kind %d", kind)
	}
	return Token{}, p.errorf("expected %s, found %s", want, p.peek())
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("sql: parse error at offset %d: %s", p.peek().Pos, fmt.Sprintf(format, args...))
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if _, err := p.expect(TokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{Limit: -1}
	stmt.Distinct = p.accept(TokKeyword, "DISTINCT")

	// Projection list.
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		stmt.Items = append(stmt.Items, item)
		if !p.accept(TokSymbol, ",") {
			break
		}
	}

	if _, err := p.expect(TokKeyword, "FROM"); err != nil {
		return nil, err
	}
	for {
		ref, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		stmt.From = append(stmt.From, ref)
		if !p.accept(TokSymbol, ",") {
			break
		}
	}

	if p.accept(TokKeyword, "WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = e
	}
	if p.accept(TokKeyword, "GROUP") {
		if _, err := p.expect(TokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, e)
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
	}
	if p.accept(TokKeyword, "HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Having = e
	}
	if p.accept(TokKeyword, "ORDER") {
		if _, err := p.expect(TokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.accept(TokKeyword, "DESC") {
				item.Desc = true
			} else {
				p.accept(TokKeyword, "ASC")
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
	}
	if p.accept(TokKeyword, "LIMIT") {
		t, err := p.expect(TokNumber, "")
		if err != nil {
			return nil, err
		}
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil || n < 0 {
			return nil, p.errorf("invalid LIMIT %q", t.Text)
		}
		stmt.Limit = n
	}
	return stmt, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.accept(TokSymbol, "*") {
		return SelectItem{Star: true}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.accept(TokKeyword, "AS") {
		t, err := p.expect(TokIdent, "")
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = t.Text
	} else if p.at(TokIdent, "") {
		item.Alias = p.next().Text
	}
	return item, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	t, err := p.expect(TokIdent, "")
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Name: t.Text}
	// Optional alias before the window clause.
	if p.at(TokIdent, "") {
		ref.Alias = p.next().Text
	}
	if p.accept(TokSymbol, "[") {
		w, err := p.parseWindowSpec()
		if err != nil {
			return TableRef{}, err
		}
		ref.Window = w
		if _, err := p.expect(TokSymbol, "]"); err != nil {
			return TableRef{}, err
		}
	}
	// Alias may also follow the window clause.
	if ref.Alias == "" && p.at(TokIdent, "") {
		ref.Alias = p.next().Text
	}
	return ref, nil
}

func (p *parser) parseWindowSpec() (*WindowSpec, error) {
	if p.accept(TokKeyword, "LANDMARK") {
		w := &WindowSpec{Kind: LandmarkWindow}
		if _, err := p.expect(TokKeyword, "SLIDE"); err != nil {
			return nil, err
		}
		n, dur, isTime, err := p.parseQuantity()
		if err != nil {
			return nil, err
		}
		if isTime {
			w.SlideDur = dur
		} else {
			w.SlideRows = n
		}
		if w.SlideRows <= 0 && w.SlideDur <= 0 {
			return nil, p.errorf("landmark SLIDE must be positive")
		}
		return w, nil
	}
	if _, err := p.expect(TokKeyword, "RANGE"); err != nil {
		return nil, err
	}
	n, dur, isTime, err := p.parseQuantity()
	if err != nil {
		return nil, err
	}
	w := &WindowSpec{}
	if isTime {
		w.Kind = TimeWindow
		w.Dur = dur
		w.SlideDur = dur // tumbling default
	} else {
		w.Kind = CountWindow
		w.Rows = n
		w.SlideRows = n // tumbling default
	}
	if p.accept(TokKeyword, "SLIDE") {
		sn, sdur, sIsTime, err := p.parseQuantity()
		if err != nil {
			return nil, err
		}
		if sIsTime != isTime {
			return nil, p.errorf("RANGE and SLIDE must both be counts or both be durations")
		}
		if isTime {
			w.SlideDur = sdur
		} else {
			w.SlideRows = sn
		}
	}
	if w.Kind == CountWindow {
		if w.Rows <= 0 || w.SlideRows <= 0 {
			return nil, p.errorf("window RANGE and SLIDE must be positive")
		}
		if w.SlideRows > w.Rows {
			return nil, p.errorf("window SLIDE %d exceeds RANGE %d", w.SlideRows, w.Rows)
		}
		if w.Rows%w.SlideRows != 0 {
			return nil, p.errorf("window RANGE %d must be a multiple of SLIDE %d", w.Rows, w.SlideRows)
		}
	} else {
		if w.Dur <= 0 || w.SlideDur <= 0 {
			return nil, p.errorf("window RANGE and SLIDE durations must be positive")
		}
		if w.SlideDur > w.Dur {
			return nil, p.errorf("window SLIDE %s exceeds RANGE %s", w.SlideDur, w.Dur)
		}
		if w.Dur%w.SlideDur != 0 {
			return nil, p.errorf("window RANGE %s must be a multiple of SLIDE %s", w.Dur, w.SlideDur)
		}
	}
	return w, nil
}

// parseQuantity parses `123` or `123 SECONDS`-style durations.
func (p *parser) parseQuantity() (int64, time.Duration, bool, error) {
	t, err := p.expect(TokNumber, "")
	if err != nil {
		return 0, 0, false, err
	}
	n, err := strconv.ParseInt(t.Text, 10, 64)
	if err != nil {
		return 0, 0, false, p.errorf("invalid window quantity %q", t.Text)
	}
	unit := time.Duration(0)
	switch {
	case p.accept(TokKeyword, "MILLISECONDS") || p.accept(TokKeyword, "MILLISECOND"):
		unit = time.Millisecond
	case p.accept(TokKeyword, "SECONDS") || p.accept(TokKeyword, "SECOND"):
		unit = time.Second
	case p.accept(TokKeyword, "MINUTES") || p.accept(TokKeyword, "MINUTE"):
		unit = time.Minute
	case p.accept(TokKeyword, "HOURS") || p.accept(TokKeyword, "HOUR"):
		unit = time.Hour
	}
	if unit > 0 {
		return 0, time.Duration(n) * unit, true, nil
	}
	return n, 0, false, nil
}

// Expression parsing with precedence climbing:
//
//	OR < AND < NOT < comparison < additive < multiplicative < unary < primary
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(TokKeyword, "OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept(TokKeyword, "AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.accept(TokKeyword, "NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", E: e}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if p.accept(TokKeyword, "BETWEEN") {
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokKeyword, "AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &BinExpr{
			Op: "AND",
			L:  &BinExpr{Op: ">=", L: l, R: lo},
			R:  &BinExpr{Op: "<=", L: l, R: hi},
		}, nil
	}
	for _, op := range []string{"<=", ">=", "<>", "!=", "=", "<", ">"} {
		if p.accept(TokSymbol, op) {
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			if op == "!=" {
				op = "<>"
			}
			return &BinExpr{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.accept(TokSymbol, "+"):
			op = "+"
		case p.accept(TokSymbol, "-"):
			op = "-"
		default:
			return l, nil
		}
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: op, L: l, R: r}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.accept(TokSymbol, "*"):
			op = "*"
		case p.accept(TokSymbol, "/"):
			op = "/"
		case p.accept(TokSymbol, "%"):
			op = "%"
		default:
			return l, nil
		}
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: op, L: l, R: r}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.accept(TokSymbol, "-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if n, ok := e.(*NumberLit); ok {
			return &NumberLit{Text: "-" + n.Text, IsFloat: n.IsFloat, Int: -n.Int, Float: -n.Float}, nil
		}
		return &UnaryExpr{Op: "-", E: e}, nil
	}
	p.accept(TokSymbol, "+")
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case TokNumber:
		p.next()
		if strings.ContainsAny(t.Text, ".eE") {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, p.errorf("invalid number %q", t.Text)
			}
			return &NumberLit{Text: t.Text, IsFloat: true, Float: f}, nil
		}
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errorf("invalid number %q", t.Text)
		}
		return &NumberLit{Text: t.Text, Int: n}, nil
	case TokString:
		p.next()
		return &StringLit{Val: t.Text}, nil
	case TokKeyword:
		switch t.Text {
		case "TRUE":
			p.next()
			return &BoolLit{Val: true}, nil
		case "FALSE":
			p.next()
			return &BoolLit{Val: false}, nil
		}
		return nil, p.errorf("unexpected keyword %s in expression", t)
	case TokSymbol:
		if t.Text == "(" {
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokSymbol, ")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		return nil, p.errorf("unexpected %s in expression", t)
	case TokIdent:
		p.next()
		name := t.Text
		// Function call?
		if p.accept(TokSymbol, "(") {
			fc := &FuncCall{Name: name}
			if p.accept(TokSymbol, "*") {
				fc.Star = true
			} else if !p.at(TokSymbol, ")") {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					fc.Args = append(fc.Args, a)
					if !p.accept(TokSymbol, ",") {
						break
					}
				}
			}
			if _, err := p.expect(TokSymbol, ")"); err != nil {
				return nil, err
			}
			return fc, nil
		}
		// Qualified identifier?
		if p.accept(TokSymbol, ".") {
			col, err := p.expect(TokIdent, "")
			if err != nil {
				return nil, err
			}
			return &Ident{Qualifier: name, Name: col.Text}, nil
		}
		return &Ident{Name: name}, nil
	}
	return nil, p.errorf("unexpected %s", t)
}
