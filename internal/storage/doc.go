// Package storage is the persistent segment store behind the basket
// segment log: sealed segments written to disk in the columnar layout with
// a checksummed footer, a torn-tail-tolerant recovery scan, and a small
// JSON manifest persisting the engine catalog (stream/table DDL plus
// standing-query statements and options) so a crashed process can replay
// the log and restart with identical continuous-query state.
//
// # Backend contract
//
// Store is the pluggable per-stream backend interface the basket writes
// through. Two implementations exist: Memory (a no-op — today's purely
// in-RAM behavior) and StreamLog (one directory of segment files per
// stream). The basket calls AppendChunk for every ingest batch landing in
// the mutable tail, Seal exactly once when a tail reaches the seal
// threshold, and Fetch when a cursor reads a segment whose column payloads
// were evicted from RAM. Durable() gates eviction: only a store that can
// fetch a segment back may see its RAM copy dropped.
//
// # On-disk layout
//
//	<root>/MANIFEST.json              catalog + standing queries (atomic rename)
//	<root>/streams/<name>/seg-<base>.seg   one file per segment
//
// A segment file is a sequence of checksummed records — one per append
// chunk — followed, once sealed, by a fixed-size checksummed footer:
//
//	record: u32 bodyLen | u32 crc32c(body) | body
//	body:   u32 rows | col payloads in schema order | rows×8 arrival ts
//	footer: "DCSEGFTR" | u32 version | u64 base | u32 rows | u32 records |
//	        u32 schemaHash | u32 crc32c(previous 32 bytes)
//
// Column payloads are little-endian: 8 bytes per value for
// BIGINT/TIMESTAMP/DOUBLE, 1 byte per BOOLEAN, u32 length + bytes per
// VARCHAR value.
//
// # Crash consistency
//
// Seal syncs the file before the next segment's first record can be
// written, so a valid successor file implies a durable predecessor.
// Recovery walks the files in base order: every file with a valid footer
// and matching record checksums loads as a sealed immutable segment; the
// first file that fails validation (missing footer, torn record, torn
// footer, base discontinuity) is truncated to its last whole record and
// becomes the mutable tail again, and any files after it are discarded.
// Data loss is therefore bounded to the unsynced suffix of the tail, and
// always lands on a record (= append batch) boundary — a recovered log is
// a strict prefix of the crashed one, never a corrupted interior.
package storage
