package storage

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"datacell/internal/catalog"
)

// ColumnDef is one column of a persisted stream or table definition.
type ColumnDef struct {
	Name string `json:"name"`
	Type uint8  `json:"type"` // vector.Type
}

// SourceDef is a persisted stream or table definition.
type SourceDef struct {
	Name string      `json:"name"`
	Cols []ColumnDef `json:"cols"`
}

// QueryDef is a persisted standing query: the statement text plus every
// serializable option, enough for recovery to re-register it with the
// same id (q<seq>) and execution strategy. Start records the absolute
// row offset of the query's cursor on each input stream at registration
// time; replay re-reads the retained log from there.
type QueryDef struct {
	Seq               int              `json:"seq"`
	SQL               string           `json:"sql"`
	Mode              uint8            `json:"mode"`
	AutoThreshold     int64            `json:"auto_threshold,omitempty"`
	Chunks            int              `json:"chunks,omitempty"`
	AdaptiveChunks    bool             `json:"adaptive_chunks,omitempty"`
	Parallelism       int              `json:"parallelism,omitempty"`
	SerialMergeInstr  bool             `json:"serial_merge_instr,omitempty"`
	PrivateFragments  bool             `json:"private_fragments,omitempty"`
	PrivateMergeTails bool             `json:"private_merge_tails,omitempty"`
	PrivateJoinPlan   bool             `json:"private_join_plan,omitempty"`
	Start             map[string]int64 `json:"start,omitempty"`
}

// Manifest is the persisted engine catalog. It is rewritten atomically
// (temp file + rename + directory sync) on every DDL or query
// registration change, so a crash leaves either the old or the new
// catalog, never a torn one.
type Manifest struct {
	Version int         `json:"version"`
	NextSeq int         `json:"next_seq"` // high-water query sequence; never reused
	Streams []SourceDef `json:"streams,omitempty"`
	Tables  []SourceDef `json:"tables,omitempty"`
	Queries []QueryDef  `json:"queries,omitempty"`
}

const (
	manifestVersion = 1
	manifestName    = "MANIFEST.json"
)

// Clone deep-copies the manifest.
func (m Manifest) Clone() Manifest {
	out := m
	out.Streams = append([]SourceDef(nil), m.Streams...)
	out.Tables = append([]SourceDef(nil), m.Tables...)
	out.Queries = make([]QueryDef, len(m.Queries))
	for i, q := range m.Queries {
		out.Queries[i] = q
		if q.Start != nil {
			out.Queries[i].Start = make(map[string]int64, len(q.Start))
			for k, v := range q.Start {
				out.Queries[i].Start[k] = v
			}
		}
	}
	return out
}

// Dir is a datacell data directory: the manifest at the root and one
// segment-file directory per stream under streams/.
type Dir struct {
	root       string
	syncChunks bool

	mu      sync.Mutex
	man     Manifest
	streams map[string]*StreamLog
}

// OpenDir opens (creating if necessary) a data directory and loads its
// manifest. An empty or absent directory yields an empty manifest.
func OpenDir(root string) (*Dir, error) {
	if err := os.MkdirAll(filepath.Join(root, "streams"), 0o755); err != nil {
		return nil, err
	}
	d := &Dir{root: root, streams: make(map[string]*StreamLog), man: Manifest{Version: manifestVersion}}
	raw, err := os.ReadFile(filepath.Join(root, manifestName))
	switch {
	case os.IsNotExist(err):
	case err != nil:
		return nil, err
	default:
		var m Manifest
		if err := json.Unmarshal(raw, &m); err != nil {
			return nil, fmt.Errorf("storage: manifest: %w", err)
		}
		if m.Version != manifestVersion {
			return nil, fmt.Errorf("storage: manifest version %d, want %d", m.Version, manifestVersion)
		}
		d.man = m
	}
	return d, nil
}

// Root returns the data directory path.
func (d *Dir) Root() string { return d.root }

// SetSyncChunks makes subsequently opened stream logs fsync every append
// chunk instead of only on seal (slower, but bounds data loss to zero
// acknowledged batches instead of the unsynced tail suffix).
func (d *Dir) SetSyncChunks(on bool) { d.syncChunks = on }

// Manifest returns a copy of the current manifest.
func (d *Dir) Manifest() Manifest {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.man.Clone()
}

// UpdateManifest applies fn to the manifest and persists it atomically.
// If the write fails the in-memory manifest keeps the update (the caller
// has already acted on it); the error reports the durability gap.
func (d *Dir) UpdateManifest(fn func(*Manifest)) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	fn(&d.man)
	d.man.Version = manifestVersion
	raw, err := json.MarshalIndent(d.man, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(d.root, manifestName+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(raw, '\n')); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(d.root, manifestName)); err != nil {
		return err
	}
	// Sync the directory so the rename itself survives power loss.
	if dirF, err := os.Open(d.root); err == nil {
		dirF.Sync()
		dirF.Close()
	}
	return nil
}

// escapeStreamName maps a stream name to a filesystem-safe directory
// name: bytes outside [A-Za-z0-9_-] become %XX.
func escapeStreamName(name string) string {
	out := make([]byte, 0, len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z', '0' <= c && c <= '9', c == '_', c == '-':
			out = append(out, c)
		default:
			out = append(out, fmt.Sprintf("%%%02X", c)...)
		}
	}
	return string(out)
}

// Stream returns (opening on first use) the segment log for a stream.
// The same *StreamLog is returned for repeat calls with the same name.
func (d *Dir) Stream(name string, schema catalog.Schema) (*StreamLog, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if l, ok := d.streams[name]; ok {
		return l, nil
	}
	l, err := newStreamLog(filepath.Join(d.root, "streams", escapeStreamName(name)), schema, d.syncChunks)
	if err != nil {
		return nil, err
	}
	d.streams[name] = l
	return l, nil
}

// Close closes every open stream log.
func (d *Dir) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	var first error
	for _, l := range d.streams {
		if err := l.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
