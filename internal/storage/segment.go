package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"datacell/internal/catalog"
	"datacell/internal/vector"
)

// Segment file byte layout (all integers little-endian unless noted):
//
//	file   = record* footer?
//	record = u32 bodyLen | u32 crc32c(body) | body
//	body   = u32 rows | payload[col0] .. payload[colN-1] | rows × i64 ts
//	footer = "DCSEGFTR" | u32 version | u64 base | u32 rows |
//	         u32 records | u32 schemaHash | u32 crc32c(first 32 bytes)
//
// Payloads: BIGINT/TIMESTAMP = rows × i64; DOUBLE = rows × u64 (IEEE-754
// bits); BOOLEAN = rows × u8 (0/1); VARCHAR = rows × (u32 len | bytes).
const (
	footerMagic   = "DCSEGFTR"
	footerVersion = 1
	footerSize    = 8 + 4 + 8 + 4 + 4 + 4 + 4 // 36 bytes
	recordHdrSize = 8
	segSuffix     = ".seg"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// footer is the decoded fixed-size trailer of a sealed segment file.
type footer struct {
	base       int64
	rows       uint32
	records    uint32
	schemaHash uint32
}

func encodeFooter(f footer) []byte {
	buf := make([]byte, footerSize)
	copy(buf, footerMagic)
	binary.LittleEndian.PutUint32(buf[8:], footerVersion)
	binary.LittleEndian.PutUint64(buf[12:], uint64(f.base))
	binary.LittleEndian.PutUint32(buf[20:], f.rows)
	binary.LittleEndian.PutUint32(buf[24:], f.records)
	binary.LittleEndian.PutUint32(buf[28:], f.schemaHash)
	binary.LittleEndian.PutUint32(buf[32:], crc32.Checksum(buf[:32], castagnoli))
	return buf
}

// decodeFooter validates the trailing footerSize bytes of a segment file.
func decodeFooter(buf []byte) (footer, error) {
	if len(buf) != footerSize {
		return footer{}, fmt.Errorf("storage: footer is %d bytes, want %d", len(buf), footerSize)
	}
	if string(buf[:8]) != footerMagic {
		return footer{}, fmt.Errorf("storage: bad footer magic")
	}
	if got, want := binary.LittleEndian.Uint32(buf[32:]), crc32.Checksum(buf[:32], castagnoli); got != want {
		return footer{}, fmt.Errorf("storage: footer checksum mismatch")
	}
	if v := binary.LittleEndian.Uint32(buf[8:]); v != footerVersion {
		return footer{}, fmt.Errorf("storage: footer version %d, want %d", v, footerVersion)
	}
	return footer{
		base:       int64(binary.LittleEndian.Uint64(buf[12:])),
		rows:       binary.LittleEndian.Uint32(buf[20:]),
		records:    binary.LittleEndian.Uint32(buf[24:]),
		schemaHash: binary.LittleEndian.Uint32(buf[28:]),
	}, nil
}

// SchemaHash fingerprints a schema so a segment file can detect being
// read back under a different stream definition.
func SchemaHash(schema catalog.Schema) uint32 {
	var sb strings.Builder
	for _, c := range schema.Cols {
		sb.WriteString(c.Name)
		sb.WriteByte(':')
		sb.WriteString(c.Type.String())
		sb.WriteByte('|')
	}
	return crc32.Checksum([]byte(sb.String()), castagnoli)
}

// encodeRecord serializes one append chunk. Cols hold exactly the chunk's
// rows (the basket slices the batch at seal boundaries before calling).
func encodeRecord(cols []*vector.Vector, ts []int64) []byte {
	rows := len(ts)
	size := 4
	for _, c := range cols {
		switch c.Type() {
		case vector.Int64, vector.Timestamp, vector.Float64:
			size += 8 * rows
		case vector.Bool:
			size += rows
		case vector.Str:
			for _, s := range c.Strs() {
				size += 4 + len(s)
			}
		}
	}
	size += 8 * rows

	buf := make([]byte, recordHdrSize, recordHdrSize+size)
	binary.LittleEndian.PutUint32(buf, uint32(size)) // crc patched into buf[4:] below
	buf = binary.LittleEndian.AppendUint32(buf, uint32(rows))
	for _, c := range cols {
		switch c.Type() {
		case vector.Int64, vector.Timestamp:
			for _, v := range c.Int64s() {
				buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
			}
		case vector.Float64:
			for _, v := range c.Float64s() {
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
			}
		case vector.Bool:
			for _, v := range c.Bools() {
				if v {
					buf = append(buf, 1)
				} else {
					buf = append(buf, 0)
				}
			}
		case vector.Str:
			for _, s := range c.Strs() {
				buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
				buf = append(buf, s...)
			}
		}
	}
	for _, v := range ts {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
	}
	binary.LittleEndian.PutUint32(buf[4:], crc32.Checksum(buf[recordHdrSize:], castagnoli))
	return buf
}

// decodeRecordBody appends one record's rows onto cols/ts. The body has
// already passed its checksum; errors here mean the record was encoded
// under a different schema.
func decodeRecordBody(body []byte, schema catalog.Schema, cols []*vector.Vector, ts []int64) ([]int64, error) {
	if len(body) < 4 {
		return ts, fmt.Errorf("storage: record body too short")
	}
	rows := int(binary.LittleEndian.Uint32(body))
	body = body[4:]
	// Reject absurd row counts before any per-row loop: every row costs at
	// least 8 ts bytes, so rows is bounded by the body size.
	if rows < 0 || rows > len(body)/8 {
		return ts, fmt.Errorf("storage: record claims %d rows in %d bytes", rows, len(body))
	}
	for i, col := range schema.Cols {
		switch col.Type {
		case vector.Int64, vector.Timestamp:
			if len(body) < 8*rows {
				return ts, fmt.Errorf("storage: truncated %s payload", col.Name)
			}
			for r := 0; r < rows; r++ {
				cols[i].AppendInt64(int64(binary.LittleEndian.Uint64(body[8*r:])))
			}
			body = body[8*rows:]
		case vector.Float64:
			if len(body) < 8*rows {
				return ts, fmt.Errorf("storage: truncated %s payload", col.Name)
			}
			for r := 0; r < rows; r++ {
				cols[i].AppendFloat64(math.Float64frombits(binary.LittleEndian.Uint64(body[8*r:])))
			}
			body = body[8*rows:]
		case vector.Bool:
			if len(body) < rows {
				return ts, fmt.Errorf("storage: truncated %s payload", col.Name)
			}
			for r := 0; r < rows; r++ {
				cols[i].AppendBool(body[r] != 0)
			}
			body = body[rows:]
		case vector.Str:
			for r := 0; r < rows; r++ {
				if len(body) < 4 {
					return ts, fmt.Errorf("storage: truncated %s payload", col.Name)
				}
				n := int(binary.LittleEndian.Uint32(body))
				body = body[4:]
				if n < 0 || n > len(body) {
					return ts, fmt.Errorf("storage: string length %d exceeds record", n)
				}
				cols[i].AppendStr(string(body[:n]))
				body = body[n:]
			}
		default:
			return ts, fmt.Errorf("storage: unsupported column type %s", col.Type)
		}
	}
	if len(body) != 8*rows {
		return ts, fmt.Errorf("storage: record has %d trailing bytes, want %d ts bytes", len(body), 8*rows)
	}
	for r := 0; r < rows; r++ {
		ts = append(ts, int64(binary.LittleEndian.Uint64(body[8*r:])))
	}
	return ts, nil
}

// StreamLog is the disk store for one stream: a directory of segment
// files, at most one of which (the highest base) is an unsealed mutable
// tail held open for appending. It implements Store.
type StreamLog struct {
	dir        string
	schema     catalog.Schema
	hash       uint32
	syncChunks bool

	mu       sync.Mutex
	tailF    *os.File // open unsealed tail, nil when the newest segment is sealed
	tailBase int64
	tailRecs uint32
	tailRows int
}

// newStreamLog creates or reuses dir for the stream's segment files.
func newStreamLog(dir string, schema catalog.Schema, syncChunks bool) (*StreamLog, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &StreamLog{dir: dir, schema: schema, hash: SchemaHash(schema), syncChunks: syncChunks, tailBase: -1}, nil
}

func segFileName(base int64) string {
	return fmt.Sprintf("seg-%016x%s", uint64(base), segSuffix)
}

func parseSegFileName(name string) (int64, bool) {
	if !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, "seg-"), segSuffix)
	if len(hex) != 16 {
		return 0, false
	}
	u, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return int64(u), true
}

// AppendChunk writes one append batch as a checksummed record into the
// tail segment file at base, creating the file on the segment's first
// chunk.
func (l *StreamLog) AppendChunk(base int64, cols []*vector.Vector, ts []int64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.tailF == nil {
		f, err := os.OpenFile(filepath.Join(l.dir, segFileName(base)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		l.tailF, l.tailBase, l.tailRecs, l.tailRows = f, base, 0, 0
	} else if l.tailBase != base {
		return fmt.Errorf("storage: append to segment %d while tail is %d", base, l.tailBase)
	}
	if _, err := l.tailF.Write(encodeRecord(cols, ts)); err != nil {
		return err
	}
	l.tailRecs++
	l.tailRows += len(ts)
	if l.syncChunks {
		return l.tailF.Sync()
	}
	return nil
}

// Seal freezes the tail segment at base: footer, fsync, close. The fsync
// happens before any successor segment's first record can be written, so
// the existence of a later segment file implies this one is durable.
func (l *StreamLog) Seal(base int64, rows int) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.tailF == nil || l.tailBase != base {
		return fmt.Errorf("storage: seal of segment %d but tail is %d", base, l.tailBase)
	}
	if rows != l.tailRows {
		return fmt.Errorf("storage: seal of segment %d with %d rows, wrote %d", base, rows, l.tailRows)
	}
	ftr := encodeFooter(footer{base: base, rows: uint32(rows), records: l.tailRecs, schemaHash: l.hash})
	if _, err := l.tailF.Write(ftr); err != nil {
		return err
	}
	if err := l.tailF.Sync(); err != nil {
		return err
	}
	err := l.tailF.Close()
	l.tailF, l.tailBase = nil, -1
	return err
}

// Fetch reads the sealed segment at base back into memory.
func (l *StreamLog) Fetch(base int64) (SegmentData, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	path := filepath.Join(l.dir, segFileName(base))
	raw, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return SegmentData{}, ErrNotFound
		}
		return SegmentData{}, err
	}
	seg, err := l.decodeFile(base, raw)
	if err != nil {
		return SegmentData{}, err
	}
	if !seg.Sealed {
		return SegmentData{}, fmt.Errorf("storage: segment %d is not sealed", base)
	}
	return seg, nil
}

// decodeFile parses a whole segment file. A valid footer makes the
// segment sealed; in that case every record must also validate, the total
// row count must match the footer, and the footer's base and schema hash
// must match. Without a (valid) footer the file decodes as an unsealed
// prefix: records are consumed until the first invalid one, and
// seg.Rows/len(seg.TS) reflect only the valid prefix. The caller decides
// whether a partial prefix is salvage (Recover) or corruption (Fetch).
func (l *StreamLog) decodeFile(base int64, raw []byte) (SegmentData, error) {
	var ftr footer
	sealed := false
	body := raw
	if len(raw) >= footerSize {
		if f, err := decodeFooter(raw[len(raw)-footerSize:]); err == nil {
			if f.base != base {
				return SegmentData{}, fmt.Errorf("storage: footer base %d in file for %d", f.base, base)
			}
			if f.schemaHash != l.hash {
				return SegmentData{}, fmt.Errorf("storage: segment %d written under a different schema", base)
			}
			ftr, sealed = f, true
			body = raw[:len(raw)-footerSize]
		}
	}
	cols := make([]*vector.Vector, len(l.schema.Cols))
	for i, c := range l.schema.Cols {
		cols[i] = vector.New(c.Type, int(ftr.rows))
	}
	var ts []int64
	var recs uint32
	for len(body) > 0 {
		if len(body) < recordHdrSize {
			if sealed {
				return SegmentData{}, fmt.Errorf("storage: segment %d: torn record header", base)
			}
			break
		}
		bodyLen := int(binary.LittleEndian.Uint32(body))
		crc := binary.LittleEndian.Uint32(body[4:])
		if bodyLen < 4 || bodyLen > len(body)-recordHdrSize {
			if sealed {
				return SegmentData{}, fmt.Errorf("storage: segment %d: record overruns file", base)
			}
			break
		}
		rec := body[recordHdrSize : recordHdrSize+bodyLen]
		if crc32.Checksum(rec, castagnoli) != crc {
			if sealed {
				return SegmentData{}, fmt.Errorf("storage: segment %d: record checksum mismatch", base)
			}
			break
		}
		var err error
		ts, err = decodeRecordBody(rec, l.schema, cols, ts)
		if err != nil {
			// Checksum passed but the shape is wrong: schema drift, not a
			// torn write. Corrupt even for an unsealed tail.
			return SegmentData{}, fmt.Errorf("storage: segment %d: %w", base, err)
		}
		recs++
		body = body[recordHdrSize+bodyLen:]
	}
	if sealed {
		if uint32(len(ts)) != ftr.rows || recs != ftr.records {
			return SegmentData{}, fmt.Errorf("storage: segment %d: footer says %d rows/%d records, file has %d/%d",
				base, ftr.rows, ftr.records, len(ts), recs)
		}
	}
	return SegmentData{Base: base, Rows: len(ts), Cols: cols, TS: ts, Sealed: sealed}, nil
}

// Recover scans the stream directory after a crash. Segment files are
// validated in base order; the first invalid or unsealed file is
// truncated to its last whole record and becomes the reopened mutable
// tail, and every later file is deleted (they can only exist if the log
// was torn mid-history, which the seal-before-successor fsync rule makes
// equivalent to lost data past the tear). Returns the surviving segments
// in order; the last one may be unsealed (Rows may be 0 for none at all).
// Subsequent AppendChunk calls with the unsealed segment's base extend
// the same file.
func (l *StreamLog) Recover() ([]SegmentData, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.tailF != nil {
		return nil, fmt.Errorf("storage: recover with open tail")
	}
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return nil, err
	}
	var bases []int64
	for _, e := range entries {
		if b, ok := parseSegFileName(e.Name()); ok {
			bases = append(bases, b)
		}
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })

	var segs []SegmentData
	valid := 0 // bases[:valid] survived
	for i, base := range bases {
		if i > 0 && base != segs[len(segs)-1].Base+int64(segs[len(segs)-1].Rows) {
			break // gap: everything from here on is unreachable history
		}
		path := filepath.Join(l.dir, segFileName(base))
		raw, readErr := os.ReadFile(path)
		if readErr != nil {
			return nil, readErr
		}
		seg, decErr := l.decodeFile(base, raw)
		if decErr != nil || !seg.Sealed {
			// Torn or unsealed: salvage the valid record prefix and stop.
			// decErr (schema drift / corrupt sealed file) salvages nothing.
			if decErr != nil {
				seg = SegmentData{Base: base}
			}
			validBytes := validPrefixLen(raw, l.schema)
			if seg.Rows == 0 {
				if err := os.Remove(path); err != nil {
					return nil, err
				}
			} else {
				if err := truncateTo(path, validBytes); err != nil {
					return nil, err
				}
				f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
				if err != nil {
					return nil, err
				}
				l.tailF, l.tailBase = f, base
				l.tailRecs = countRecords(raw[:validBytes])
				l.tailRows = seg.Rows
				segs = append(segs, seg)
			}
			valid = i + 1
			break
		}
		segs = append(segs, seg)
		valid = i + 1
	}
	for _, base := range bases[valid:] {
		if err := os.Remove(filepath.Join(l.dir, segFileName(base))); err != nil {
			return nil, err
		}
	}
	return segs, nil
}

// validPrefixLen returns the byte length of the longest prefix of raw
// made of whole, checksum-valid records that also decode under schema.
func validPrefixLen(raw []byte, schema catalog.Schema) int {
	cols := make([]*vector.Vector, len(schema.Cols))
	for i, c := range schema.Cols {
		cols[i] = vector.New(c.Type, 0)
	}
	var ts []int64
	off := 0
	for {
		rest := raw[off:]
		if len(rest) < recordHdrSize {
			return off
		}
		bodyLen := int(binary.LittleEndian.Uint32(rest))
		if bodyLen < 4 || bodyLen > len(rest)-recordHdrSize {
			return off
		}
		rec := rest[recordHdrSize : recordHdrSize+bodyLen]
		if crc32.Checksum(rec, castagnoli) != binary.LittleEndian.Uint32(rest[4:]) {
			return off
		}
		var err error
		ts, err = decodeRecordBody(rec, schema, cols, ts)
		if err != nil {
			return off
		}
		off += recordHdrSize + bodyLen
	}
}

// countRecords counts whole records in a prefix already known valid.
func countRecords(raw []byte) uint32 {
	var n uint32
	for off := 0; off+recordHdrSize <= len(raw); {
		bodyLen := int(binary.LittleEndian.Uint32(raw[off:]))
		off += recordHdrSize + bodyLen
		n++
	}
	return n
}

func truncateTo(path string, n int) error {
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := f.Truncate(int64(n)); err != nil {
		return err
	}
	return f.Sync()
}

// Durable reports true: sealed segments survive eviction and restart.
func (l *StreamLog) Durable() bool { return true }

// Drop removes every sealed segment file whose rows all precede below.
// The open tail is never dropped.
func (l *StreamLog) Drop(below int64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		base, ok := parseSegFileName(e.Name())
		if !ok || (l.tailF != nil && base == l.tailBase) || base >= below {
			continue
		}
		path := filepath.Join(l.dir, e.Name())
		f, err := os.Open(path)
		if err != nil {
			continue
		}
		st, err := f.Stat()
		if err != nil || st.Size() < footerSize {
			f.Close()
			continue
		}
		buf := make([]byte, footerSize)
		_, rerr := f.ReadAt(buf, st.Size()-footerSize)
		f.Close()
		if rerr != nil {
			continue
		}
		ftr, err := decodeFooter(buf)
		if err != nil || ftr.base != base || base+int64(ftr.rows) > below {
			continue
		}
		if err := os.Remove(path); err != nil {
			return err
		}
	}
	return nil
}

// Close closes the open tail file, if any, without sealing it. Unsynced
// tail records may be lost on a crash after Close; Recover salvages
// whatever reached the disk.
func (l *StreamLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.tailF == nil {
		return nil
	}
	err := l.tailF.Sync()
	if cerr := l.tailF.Close(); err == nil {
		err = cerr
	}
	l.tailF, l.tailBase = nil, -1
	return err
}
