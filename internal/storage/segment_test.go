package storage

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"datacell/internal/catalog"
	"datacell/internal/vector"
)

func testSchema() catalog.Schema {
	return catalog.NewSchema(
		catalog.Column{Name: "x1", Type: vector.Int64},
		catalog.Column{Name: "x2", Type: vector.Float64},
		catalog.Column{Name: "x3", Type: vector.Str},
		catalog.Column{Name: "x4", Type: vector.Bool},
		catalog.Column{Name: "x5", Type: vector.Timestamp},
	)
}

// chunk builds one append batch of n rows starting at value base.
func chunk(base, n int) ([]*vector.Vector, []int64) {
	ints := make([]int64, n)
	floats := make([]float64, n)
	strs := make([]string, n)
	bools := make([]bool, n)
	stamps := make([]int64, n)
	ts := make([]int64, n)
	for i := 0; i < n; i++ {
		v := base + i
		ints[i] = int64(v)
		floats[i] = float64(v) + 0.5
		strs[i] = "row-" + string(rune('a'+v%26))
		bools[i] = v%3 == 0
		stamps[i] = int64(v) * 1000
		ts[i] = int64(v) * 7
	}
	return []*vector.Vector{
		vector.FromInt64(ints), vector.FromFloat64(floats), vector.FromStr(strs),
		vector.FromBool(bools), vector.FromTimestamp(stamps),
	}, ts
}

func openLog(t *testing.T, dir string) *StreamLog {
	t.Helper()
	l, err := newStreamLog(dir, testSchema(), false)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func checkSeg(t *testing.T, seg SegmentData, wantBase int64, wantRows int) {
	t.Helper()
	if seg.Base != wantBase || seg.Rows != wantRows {
		t.Fatalf("segment base/rows = %d/%d, want %d/%d", seg.Base, seg.Rows, wantBase, wantRows)
	}
	if len(seg.TS) != wantRows {
		t.Fatalf("len(TS) = %d, want %d", len(seg.TS), wantRows)
	}
	for i := 0; i < wantRows; i++ {
		v := int(wantBase) + i
		if got := seg.Cols[0].Int64s()[i]; got != int64(v) {
			t.Fatalf("row %d: int col = %d, want %d", i, got, v)
		}
		if got := seg.Cols[1].Float64s()[i]; got != float64(v)+0.5 {
			t.Fatalf("row %d: float col = %v, want %v", i, got, float64(v)+0.5)
		}
		if got, want := seg.Cols[2].Strs()[i], "row-"+string(rune('a'+v%26)); got != want {
			t.Fatalf("row %d: str col = %q, want %q", i, got, want)
		}
		if got := seg.Cols[3].Bools()[i]; got != (v%3 == 0) {
			t.Fatalf("row %d: bool col = %v", i, got)
		}
		if got := seg.Cols[4].Int64s()[i]; got != int64(v)*1000 {
			t.Fatalf("row %d: ts col = %d", i, got)
		}
		if seg.TS[i] != int64(v)*7 {
			t.Fatalf("row %d: arrival ts = %d, want %d", i, seg.TS[i], int64(v)*7)
		}
	}
}

func TestSealedRoundTrip(t *testing.T) {
	l := openLog(t, t.TempDir())
	cols, ts := chunk(0, 10)
	if err := l.AppendChunk(0, cols, ts); err != nil {
		t.Fatal(err)
	}
	cols, ts = chunk(10, 6)
	if err := l.AppendChunk(0, cols, ts); err != nil {
		t.Fatal(err)
	}
	if err := l.Seal(0, 16); err != nil {
		t.Fatal(err)
	}
	seg, err := l.Fetch(0)
	if err != nil {
		t.Fatal(err)
	}
	if !seg.Sealed {
		t.Fatal("fetched segment not sealed")
	}
	checkSeg(t, seg, 0, 16)
}

func TestFetchMissing(t *testing.T) {
	l := openLog(t, t.TempDir())
	if _, err := l.Fetch(42); err != ErrNotFound {
		t.Fatalf("Fetch(42) = %v, want ErrNotFound", err)
	}
}

func TestSealRowMismatch(t *testing.T) {
	l := openLog(t, t.TempDir())
	cols, ts := chunk(0, 4)
	if err := l.AppendChunk(0, cols, ts); err != nil {
		t.Fatal(err)
	}
	if err := l.Seal(0, 5); err == nil {
		t.Fatal("Seal with wrong row count succeeded")
	}
}

// writeSegments writes nSeal sealed segments of segRows rows each plus
// tailRows unsealed tail rows, one record per row batch of recRows.
func writeSegments(t *testing.T, l *StreamLog, nSeal, segRows, tailRows int) {
	t.Helper()
	base := 0
	for s := 0; s < nSeal; s++ {
		cols, ts := chunk(base, segRows)
		if err := l.AppendChunk(int64(base), cols, ts); err != nil {
			t.Fatal(err)
		}
		if err := l.Seal(int64(base), segRows); err != nil {
			t.Fatal(err)
		}
		base += segRows
	}
	if tailRows > 0 {
		cols, ts := chunk(base, tailRows)
		if err := l.AppendChunk(int64(base), cols, ts); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRecoverCleanLog(t *testing.T) {
	dir := t.TempDir()
	l := openLog(t, dir)
	writeSegments(t, l, 3, 8, 5)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2 := openLog(t, dir)
	segs, err := l2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 4 {
		t.Fatalf("recovered %d segments, want 4", len(segs))
	}
	for i := 0; i < 3; i++ {
		if !segs[i].Sealed {
			t.Fatalf("segment %d not sealed", i)
		}
		checkSeg(t, segs[i], int64(i*8), 8)
	}
	tail := segs[3]
	if tail.Sealed {
		t.Fatal("tail came back sealed")
	}
	checkSeg(t, tail, 24, 5)

	// The recovered tail must accept further appends into the same file.
	cols, ts := chunk(29, 3)
	if err := l2.AppendChunk(24, cols, ts); err != nil {
		t.Fatal(err)
	}
	if err := l2.Seal(24, 8); err != nil {
		t.Fatal(err)
	}
	seg, err := l2.Fetch(24)
	if err != nil {
		t.Fatal(err)
	}
	checkSeg(t, seg, 24, 8)
}

func TestRecoverTornTail(t *testing.T) {
	for _, cut := range []int{1, 3, 7, 8, 9} { // bytes removed from the tail file
		dir := t.TempDir()
		l := openLog(t, dir)
		writeSegments(t, l, 1, 8, 0)
		// Two tail records of 4 rows each; tear inside the second.
		cols, ts := chunk(8, 4)
		if err := l.AppendChunk(8, cols, ts); err != nil {
			t.Fatal(err)
		}
		cols, ts = chunk(12, 4)
		if err := l.AppendChunk(8, cols, ts); err != nil {
			t.Fatal(err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, segFileName(8))
		st, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(path, st.Size()-int64(cut)); err != nil {
			t.Fatal(err)
		}

		l2 := openLog(t, dir)
		segs, err := l2.Recover()
		if err != nil {
			t.Fatal(err)
		}
		if len(segs) != 2 {
			t.Fatalf("cut %d: recovered %d segments, want 2", cut, len(segs))
		}
		checkSeg(t, segs[0], 0, 8)
		checkSeg(t, segs[1], 8, 4) // second record lost, first intact
		if segs[1].Sealed {
			t.Fatalf("cut %d: torn tail came back sealed", cut)
		}
	}
}

func TestRecoverTornFooter(t *testing.T) {
	// Tear mid-footer: the file was sealed but the footer write was cut.
	// The records are all intact, so recovery salvages every row and the
	// segment reopens as the mutable tail.
	for cut := 1; cut < footerSize; cut += 7 {
		dir := t.TempDir()
		l := openLog(t, dir)
		writeSegments(t, l, 2, 8, 0)
		path := filepath.Join(dir, segFileName(8))
		st, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(path, st.Size()-int64(cut)); err != nil {
			t.Fatal(err)
		}

		l2 := openLog(t, dir)
		segs, err := l2.Recover()
		if err != nil {
			t.Fatal(err)
		}
		if len(segs) != 2 {
			t.Fatalf("cut %d: recovered %d segments, want 2", cut, len(segs))
		}
		if !segs[0].Sealed || segs[1].Sealed {
			t.Fatalf("cut %d: sealed flags = %v/%v, want true/false", cut, segs[0].Sealed, segs[1].Sealed)
		}
		checkSeg(t, segs[1], 8, 8)
	}
}

func TestRecoverCorruptMiddleDropsSuffix(t *testing.T) {
	// Flip a byte inside the FIRST sealed segment's records: its footer
	// checksums no longer match, so it truncates to the valid record
	// prefix and every later segment file is removed.
	dir := t.TempDir()
	l := openLog(t, dir)
	writeSegments(t, l, 3, 8, 0)
	path := filepath.Join(dir, segFileName(0))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[20] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	l2 := openLog(t, dir)
	segs, err := l2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	// The single record is torn, so nothing of segment 0 survives and the
	// whole log is empty.
	if len(segs) != 0 {
		t.Fatalf("recovered %d segments, want 0", len(segs))
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if _, ok := parseSegFileName(e.Name()); ok {
			t.Fatalf("segment file %s survived a mid-log tear", e.Name())
		}
	}
}

func TestRecoverGapDropsSuffix(t *testing.T) {
	dir := t.TempDir()
	l := openLog(t, dir)
	writeSegments(t, l, 3, 8, 0)
	if err := os.Remove(filepath.Join(dir, segFileName(8))); err != nil {
		t.Fatal(err)
	}

	l2 := openLog(t, dir)
	segs, err := l2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 || segs[0].Base != 0 {
		t.Fatalf("recovered %v segments, want just base 0", len(segs))
	}
	if _, err := os.Stat(filepath.Join(dir, segFileName(16))); !os.IsNotExist(err) {
		t.Fatal("segment past the gap survived recovery")
	}
}

func TestRecoverSchemaDrift(t *testing.T) {
	dir := t.TempDir()
	l := openLog(t, dir)
	writeSegments(t, l, 1, 8, 0)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	other, err := newStreamLog(dir, catalog.NewSchema(catalog.Column{Name: "y", Type: vector.Int64}), false)
	if err != nil {
		t.Fatal(err)
	}
	segs, err := other.Recover()
	if err != nil {
		t.Fatal(err)
	}
	// The sealed file fails the schema-hash check and its records do not
	// decode under the new schema, so nothing survives.
	if len(segs) != 0 {
		t.Fatalf("recovered %d segments under a drifted schema, want 0", len(segs))
	}
}

func TestDropRemovesCoveredSegments(t *testing.T) {
	dir := t.TempDir()
	l := openLog(t, dir)
	writeSegments(t, l, 3, 8, 4)
	if err := l.Drop(16); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Fetch(0); err != ErrNotFound {
		t.Fatalf("Fetch(0) after Drop = %v, want ErrNotFound", err)
	}
	if _, err := l.Fetch(8); err != ErrNotFound {
		t.Fatalf("Fetch(8) after Drop = %v, want ErrNotFound", err)
	}
	if _, err := l.Fetch(16); err != nil {
		t.Fatalf("Fetch(16) after Drop(16) = %v, want segment", err)
	}
	// Drop inside a segment keeps it (its rows are not all covered).
	if err := l.Drop(20); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Fetch(16); err != nil {
		t.Fatalf("Fetch(16) after Drop(20) = %v, want segment", err)
	}
}

func TestFloatBitPatternsSurvive(t *testing.T) {
	schema := catalog.NewSchema(catalog.Column{Name: "f", Type: vector.Float64})
	l, err := newStreamLog(t.TempDir(), schema, false)
	if err != nil {
		t.Fatal(err)
	}
	vals := []float64{0, math.Copysign(0, -1), math.Inf(1), math.Inf(-1), math.NaN(), math.SmallestNonzeroFloat64}
	if err := l.AppendChunk(0, []*vector.Vector{vector.FromFloat64(vals)}, make([]int64, len(vals))); err != nil {
		t.Fatal(err)
	}
	if err := l.Seal(0, len(vals)); err != nil {
		t.Fatal(err)
	}
	seg, err := l.Fetch(0)
	if err != nil {
		t.Fatal(err)
	}
	got := seg.Cols[0].Float64s()
	for i, want := range vals {
		if math.Float64bits(got[i]) != math.Float64bits(want) {
			t.Fatalf("value %d: bits %x, want %x", i, math.Float64bits(got[i]), math.Float64bits(want))
		}
	}
}

func TestManifestRoundTrip(t *testing.T) {
	root := t.TempDir()
	d, err := OpenDir(root)
	if err != nil {
		t.Fatal(err)
	}
	err = d.UpdateManifest(func(m *Manifest) {
		m.NextSeq = 3
		m.Streams = append(m.Streams, SourceDef{Name: "s", Cols: []ColumnDef{{Name: "x1", Type: uint8(vector.Int64)}}})
		m.Tables = append(m.Tables, SourceDef{Name: "t", Cols: []ColumnDef{{Name: "k", Type: uint8(vector.Str)}}})
		m.Queries = append(m.Queries, QueryDef{
			Seq: 2, SQL: "SELECT x1 FROM s [RANGE 10 SLIDE 5]", Parallelism: 4,
			Start: map[string]int64{"s": 17},
		})
	})
	if err != nil {
		t.Fatal(err)
	}

	d2, err := OpenDir(root)
	if err != nil {
		t.Fatal(err)
	}
	m := d2.Manifest()
	if m.NextSeq != 3 || len(m.Streams) != 1 || len(m.Tables) != 1 || len(m.Queries) != 1 {
		t.Fatalf("reloaded manifest = %+v", m)
	}
	q := m.Queries[0]
	if q.Seq != 2 || q.Parallelism != 4 || q.Start["s"] != 17 {
		t.Fatalf("reloaded query = %+v", q)
	}

	// Mutating the returned copy must not leak into the Dir.
	m.Queries[0].Start["s"] = 99
	if d2.Manifest().Queries[0].Start["s"] != 17 {
		t.Fatal("Manifest() returned a shallow copy")
	}
}

func TestManifestTornWriteKeepsOld(t *testing.T) {
	root := t.TempDir()
	d, err := OpenDir(root)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.UpdateManifest(func(m *Manifest) { m.NextSeq = 1 }); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash between temp-file write and rename: a stale .tmp
	// must not shadow or corrupt the real manifest.
	if err := os.WriteFile(filepath.Join(root, manifestName+".tmp"), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenDir(root)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Manifest().NextSeq != 1 {
		t.Fatalf("NextSeq = %d, want 1", d2.Manifest().NextSeq)
	}
}

func TestEscapeStreamName(t *testing.T) {
	cases := map[string]string{
		"plain":         "plain",
		"CamelCase_0-9": "CamelCase_0-9",
		"a/b":           "a%2Fb",
		"..":            "%2E%2E",
		"sp ace":        "sp%20ace",
	}
	for in, want := range cases {
		if got := escapeStreamName(in); got != want {
			t.Errorf("escapeStreamName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStreamLogRejectsCrossSegmentAppend(t *testing.T) {
	l := openLog(t, t.TempDir())
	cols, ts := chunk(0, 2)
	if err := l.AppendChunk(0, cols, ts); err != nil {
		t.Fatal(err)
	}
	cols, ts = chunk(2, 2)
	if err := l.AppendChunk(5, cols, ts); err == nil {
		t.Fatal("append to a different base with an open tail succeeded")
	}
}
