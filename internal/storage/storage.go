package storage

import (
	"errors"

	"datacell/internal/vector"
)

// ErrNotFound reports a Fetch for a segment the store does not hold.
var ErrNotFound = errors.New("storage: segment not found")

// SegmentData is one segment's contents as handed back by a store: the
// column payloads in schema order, the arrival timestamps, and the
// segment's position in the stream's global row space.
type SegmentData struct {
	Base   int64            // absolute row offset of the first row
	Rows   int              // row count
	Cols   []*vector.Vector // one vector per schema column
	TS     []int64          // arrival timestamps, len == Rows
	Sealed bool             // true if the segment carries a valid footer
}

// Store is the per-stream persistence backend the basket writes through.
// All methods are invoked under the basket's log lock, so implementations
// need no internal ordering guarantees beyond being safe for that single
// caller; StreamLog still locks internally so tests can drive it directly.
//
// The call protocol mirrors the basket's segment lifecycle: AppendChunk is
// called for every batch landing in the mutable tail (base identifies the
// tail segment), Seal exactly once when that tail freezes, Fetch when a
// reader needs an evicted segment's columns back, and Drop when the
// reclamation horizon passes a sealed segment entirely.
type Store interface {
	// AppendChunk persists one append batch destined for the tail segment
	// starting at absolute row offset base. Cols and ts alias the caller's
	// buffers and must not be retained.
	AppendChunk(base int64, cols []*vector.Vector, ts []int64) error
	// Seal marks the segment at base complete with the given row count.
	// After Seal returns, the segment must survive a crash (a durable
	// store syncs here) and Fetch(base) must succeed until Drop passes it.
	Seal(base int64, rows int) error
	// Fetch loads the segment at base back into memory.
	Fetch(base int64) (SegmentData, error)
	// Durable reports whether sealed segments survive eviction and
	// process death. Only durable stores permit the basket to evict a
	// segment's RAM copy.
	Durable() bool
	// Drop discards every sealed segment whose rows all precede the
	// absolute row offset below (base+rows <= below).
	Drop(below int64) error
	// Close releases the store's resources. The basket does not write
	// after Close.
	Close() error
}

// Memory is the no-op store: segments live only in the basket's RAM,
// exactly the engine's historical behavior. Fetch always fails because
// nothing is ever evicted from a memory-backed basket.
type Memory struct{}

// AppendChunk discards the chunk.
func (Memory) AppendChunk(int64, []*vector.Vector, []int64) error { return nil }

// Seal is a no-op.
func (Memory) Seal(int64, int) error { return nil }

// Fetch always fails: a memory store never holds evicted segments.
func (Memory) Fetch(int64) (SegmentData, error) { return SegmentData{}, ErrNotFound }

// Durable reports false: eviction is forbidden.
func (Memory) Durable() bool { return false }

// Drop is a no-op.
func (Memory) Drop(int64) error { return nil }

// Close is a no-op.
func (Memory) Close() error { return nil }
