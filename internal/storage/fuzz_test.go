package storage

import (
	"os"
	"path/filepath"
	"testing"

	"datacell/internal/catalog"
	"datacell/internal/vector"
)

// FuzzSegmentFooter throws arbitrary bytes at the segment-file reader —
// the code that parses whatever a crash left on disk. Invariants: never
// panic, never return a ragged segment, and a sealed verdict only for a
// file whose footer and every record checksum out.

func fuzzSchema() catalog.Schema {
	return catalog.NewSchema(
		catalog.Column{Name: "x1", Type: vector.Int64},
		catalog.Column{Name: "s", Type: vector.Str},
		catalog.Column{Name: "b", Type: vector.Bool},
	)
}

// sealedSegBytes builds a real two-record sealed segment and returns its
// on-disk bytes — the happy-path seed the fuzzer mutates from.
func sealedSegBytes(f *testing.F) []byte {
	dir := f.TempDir()
	l, err := newStreamLog(dir, fuzzSchema(), false)
	if err != nil {
		f.Fatal(err)
	}
	add := func(base int64, xs []int64, ss []string, bs []bool, ts []int64) {
		cols := []*vector.Vector{vector.FromInt64(xs), vector.FromStr(ss), vector.FromBool(bs)}
		if err := l.AppendChunk(base, cols, ts); err != nil {
			f.Fatal(err)
		}
	}
	add(0, []int64{1, 2}, []string{"a", ""}, []bool{true, false}, []int64{10, 20})
	add(0, []int64{3}, []string{"zz"}, []bool{true}, []int64{30})
	if err := l.Seal(0, 3); err != nil {
		f.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, segFileName(0)))
	if err != nil {
		f.Fatal(err)
	}
	return raw
}

func FuzzSegmentFooter(f *testing.F) {
	raw := sealedSegBytes(f)
	f.Add(raw)
	f.Add(raw[:len(raw)-footerSize]) // unsealed: footer gone
	f.Add(raw[:len(raw)-5])          // torn mid-footer
	f.Add(raw[:11])                  // torn mid-record
	flipped := append([]byte(nil), raw...)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)
	f.Add([]byte{})

	l, err := newStreamLog(f.TempDir(), fuzzSchema(), false)
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		sd, err := l.decodeFile(0, data)
		if err != nil {
			return
		}
		if sd.Rows != len(sd.TS) {
			t.Fatalf("Rows %d but %d timestamps", sd.Rows, len(sd.TS))
		}
		if len(sd.Cols) != fuzzSchema().Arity() {
			t.Fatalf("%d cols decoded", len(sd.Cols))
		}
		for i, c := range sd.Cols {
			if c.Len() != sd.Rows {
				t.Fatalf("col %d has %d values for %d rows", i, c.Len(), sd.Rows)
			}
		}
		if sd.Sealed && sd.Rows == 0 && len(data) > footerSize {
			t.Fatal("sealed verdict with zero rows on a non-empty body")
		}
	})
}
