package expr

import (
	"fmt"

	"datacell/internal/vector"
)

// Env supplies the input columns an expression's Col nodes index into,
// together with an optional shared selection vector: row i of the
// evaluation reads cols[c][sel[i]] (or cols[c][i] when sel is nil).
type Env struct {
	Cols []*vector.Vector
	Sel  vector.Sel
}

// Rows returns the number of rows an evaluation over env produces.
func (env *Env) Rows() int {
	if env.Sel != nil {
		return len(env.Sel)
	}
	if len(env.Cols) == 0 {
		return 0
	}
	return env.Cols[0].Len()
}

func (env *Env) value(colIdx, row int) vector.Value {
	pos := row
	if env.Sel != nil {
		pos = int(env.Sel[row])
	}
	return env.Cols[colIdx].Get(pos)
}

// Eval materializes e over env into a fresh column of env.Rows() values.
// Integer division by zero yields +Inf/-Inf/NaN float semantics via the
// float path; integer Mod by zero is an error.
func Eval(e Expr, env *Env) (*vector.Vector, error) {
	n := env.Rows()
	// Fast path: direct column reference with no selection indirection
	// still copies (operators own their outputs).
	switch t := e.(type) {
	case *Col:
		if t.Index >= len(env.Cols) {
			return nil, fmt.Errorf("expr: column index %d out of range (%d inputs)", t.Index, len(env.Cols))
		}
		return env.Cols[t.Index].Take(env.Sel), nil
	case *Const:
		out := vector.New(t.Val.Typ, n)
		for i := 0; i < n; i++ {
			out.AppendValue(t.Val)
		}
		return out, nil
	case *Bin:
		return evalBin(t, env)
	case *Cmp:
		l, err := Eval(t.L, env)
		if err != nil {
			return nil, err
		}
		r, err := Eval(t.R, env)
		if err != nil {
			return nil, err
		}
		out := vector.New(vector.Bool, n)
		for i := 0; i < n; i++ {
			cmp := l.Get(i).Compare(r.Get(i))
			keep := false
			switch t.Op {
			case 0: // Lt
				keep = cmp < 0
			case 1: // Le
				keep = cmp <= 0
			case 2: // Gt
				keep = cmp > 0
			case 3: // Ge
				keep = cmp >= 0
			case 4: // Eq
				keep = cmp == 0
			case 5: // Ne
				keep = cmp != 0
			}
			out.AppendBool(keep)
		}
		return out, nil
	case *And:
		return evalLogical(t.L, t.R, env, true)
	case *Or:
		return evalLogical(t.L, t.R, env, false)
	case *Not:
		in, err := Eval(t.E, env)
		if err != nil {
			return nil, err
		}
		bs := in.Bools()
		out := make([]bool, len(bs))
		for i, b := range bs {
			out[i] = !b
		}
		return vector.FromBool(out), nil
	}
	return nil, fmt.Errorf("expr: cannot evaluate %T", e)
}

func evalLogical(le, re Expr, env *Env, isAnd bool) (*vector.Vector, error) {
	l, err := Eval(le, env)
	if err != nil {
		return nil, err
	}
	r, err := Eval(re, env)
	if err != nil {
		return nil, err
	}
	lb, rb := l.Bools(), r.Bools()
	out := make([]bool, len(lb))
	for i := range lb {
		if isAnd {
			out[i] = lb[i] && rb[i]
		} else {
			out[i] = lb[i] || rb[i]
		}
	}
	return vector.FromBool(out), nil
}

func evalBin(b *Bin, env *Env) (*vector.Vector, error) {
	l, err := Eval(b.L, env)
	if err != nil {
		return nil, err
	}
	r, err := Eval(b.R, env)
	if err != nil {
		return nil, err
	}
	n := l.Len()
	if b.Type() == vector.Float64 {
		out := make([]float64, n)
		for i := 0; i < n; i++ {
			lf, rf := l.Get(i).AsFloat(), r.Get(i).AsFloat()
			switch b.Op {
			case Add:
				out[i] = lf + rf
			case Sub:
				out[i] = lf - rf
			case Mul:
				out[i] = lf * rf
			case Div:
				if rf == 0 {
					out[i] = 0 // SQL NULL stand-in: empty-group average guards upstream
				} else {
					out[i] = lf / rf
				}
			case Mod:
				return nil, fmt.Errorf("expr: %% requires integer operands")
			}
		}
		return vector.FromFloat64(out), nil
	}
	li, ri := l.Int64s(), r.Int64s()
	out := make([]int64, n)
	for i := 0; i < n; i++ {
		switch b.Op {
		case Add:
			out[i] = li[i] + ri[i]
		case Sub:
			out[i] = li[i] - ri[i]
		case Mul:
			out[i] = li[i] * ri[i]
		case Mod:
			if ri[i] == 0 {
				return nil, fmt.Errorf("expr: modulo by zero at row %d", i)
			}
			out[i] = li[i] % ri[i]
		}
	}
	return vector.FromInt64(out), nil
}

// EvalScalar evaluates a constant-only expression to a single value.
func EvalScalar(e Expr) (vector.Value, error) {
	if c, ok := e.(*Const); ok {
		return c.Val, nil
	}
	env := &Env{Cols: nil, Sel: vector.Sel{}}
	v, err := Eval(e, env)
	if err != nil {
		return vector.Value{}, err
	}
	if v.Len() > 0 {
		return v.Get(0), nil
	}
	// Re-evaluate over a single synthetic row for pure-constant trees.
	one := &Env{Sel: vector.Sel{0}, Cols: []*vector.Vector{vector.FromInt64([]int64{0})}}
	v, err = Eval(e, one)
	if err != nil {
		return vector.Value{}, err
	}
	return v.Get(0), nil
}

// IsConst reports whether e references no columns.
func IsConst(e Expr) bool { return len(Columns(e)) == 0 }
