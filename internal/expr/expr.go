// Package expr implements typed scalar expressions with vectorized
// evaluation. Physical plans carry expression trees whose column references
// are positional indexes into the instruction's input vectors; evaluating an
// expression over n rows materializes a fresh output column, like every
// other bulk operator.
package expr

import (
	"fmt"

	"datacell/internal/algebra"
	"datacell/internal/vector"
)

// BinOp is an arithmetic operator.
type BinOp uint8

// Arithmetic operators.
const (
	Add BinOp = iota
	Sub
	Mul
	Div
	Mod
)

// String returns the operator's SQL spelling.
func (op BinOp) String() string {
	switch op {
	case Add:
		return "+"
	case Sub:
		return "-"
	case Mul:
		return "*"
	case Div:
		return "/"
	case Mod:
		return "%"
	}
	return "?"
}

// Expr is a typed scalar expression evaluated over aligned input columns.
type Expr interface {
	// Type returns the expression's result type.
	Type() vector.Type
	// String renders the expression for plan explain output.
	String() string
}

// Col references input column Index of the enclosing instruction.
type Col struct {
	Index int
	Typ   vector.Type
	Name  string
}

// Type implements Expr.
func (c *Col) Type() vector.Type { return c.Typ }

// String implements Expr.
func (c *Col) String() string {
	if c.Name != "" {
		return c.Name
	}
	return fmt.Sprintf("$%d", c.Index)
}

// Const is a literal value.
type Const struct {
	Val vector.Value
}

// Type implements Expr.
func (c *Const) Type() vector.Type { return c.Val.Typ }

// String implements Expr.
func (c *Const) String() string {
	if c.Val.Typ == vector.Str {
		return fmt.Sprintf("%q", c.Val.S)
	}
	return c.Val.String()
}

// Bin is an arithmetic expression L op R. Integer operands with a Div
// produce Float64 (SQL avg semantics); otherwise mixing int and float
// promotes to float.
type Bin struct {
	Op   BinOp
	L, R Expr
}

// Type implements Expr.
func (b *Bin) Type() vector.Type {
	if b.Op == Div {
		return vector.Float64
	}
	if b.L.Type() == vector.Float64 || b.R.Type() == vector.Float64 {
		return vector.Float64
	}
	return vector.Int64
}

// String implements Expr.
func (b *Bin) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L.String(), b.Op, b.R.String())
}

// Cmp is a comparison producing Bool.
type Cmp struct {
	Op   algebra.CmpOp
	L, R Expr
}

// Type implements Expr.
func (c *Cmp) Type() vector.Type { return vector.Bool }

// String implements Expr.
func (c *Cmp) String() string {
	return fmt.Sprintf("(%s %s %s)", c.L.String(), c.Op, c.R.String())
}

// And is a conjunction of boolean expressions.
type And struct{ L, R Expr }

// Type implements Expr.
func (a *And) Type() vector.Type { return vector.Bool }

// String implements Expr.
func (a *And) String() string { return fmt.Sprintf("(%s AND %s)", a.L.String(), a.R.String()) }

// Or is a disjunction of boolean expressions.
type Or struct{ L, R Expr }

// Type implements Expr.
func (o *Or) Type() vector.Type { return vector.Bool }

// String implements Expr.
func (o *Or) String() string { return fmt.Sprintf("(%s OR %s)", o.L.String(), o.R.String()) }

// Not negates a boolean expression.
type Not struct{ E Expr }

// Type implements Expr.
func (n *Not) Type() vector.Type { return vector.Bool }

// String implements Expr.
func (n *Not) String() string { return fmt.Sprintf("(NOT %s)", n.E.String()) }

// Columns returns the distinct column indexes referenced by e in
// first-appearance order.
func Columns(e Expr) []int {
	var out []int
	seen := map[int]bool{}
	var walk func(Expr)
	walk = func(e Expr) {
		switch t := e.(type) {
		case *Col:
			if !seen[t.Index] {
				seen[t.Index] = true
				out = append(out, t.Index)
			}
		case *Bin:
			walk(t.L)
			walk(t.R)
		case *Cmp:
			walk(t.L)
			walk(t.R)
		case *And:
			walk(t.L)
			walk(t.R)
		case *Or:
			walk(t.L)
			walk(t.R)
		case *Not:
			walk(t.E)
		}
	}
	walk(e)
	return out
}

// Rewrite returns a copy of e with every column reference transformed by f.
func Rewrite(e Expr, f func(*Col) Expr) Expr {
	switch t := e.(type) {
	case *Col:
		return f(t)
	case *Const:
		return t
	case *Bin:
		return &Bin{Op: t.Op, L: Rewrite(t.L, f), R: Rewrite(t.R, f)}
	case *Cmp:
		return &Cmp{Op: t.Op, L: Rewrite(t.L, f), R: Rewrite(t.R, f)}
	case *And:
		return &And{L: Rewrite(t.L, f), R: Rewrite(t.R, f)}
	case *Or:
		return &Or{L: Rewrite(t.L, f), R: Rewrite(t.R, f)}
	case *Not:
		return &Not{E: Rewrite(t.E, f)}
	}
	panic(fmt.Sprintf("expr: Rewrite of %T", e))
}
