package expr

import (
	"testing"
	"testing/quick"

	"datacell/internal/algebra"
	"datacell/internal/vector"
)

func intCol(i int) *Col               { return &Col{Index: i, Typ: vector.Int64} }
func floatCol(i int) *Col             { return &Col{Index: i, Typ: vector.Float64} }
func ic(x int64) *Const               { return &Const{Val: vector.IntValue(x)} }
func fc(x float64) *Const             { return &Const{Val: vector.FloatValue(x)} }
func env(cols ...*vector.Vector) *Env { return &Env{Cols: cols} }

func TestBinOpStrings(t *testing.T) {
	want := map[BinOp]string{Add: "+", Sub: "-", Mul: "*", Div: "/", Mod: "%"}
	for op, s := range want {
		if op.String() != s {
			t.Errorf("%v => %q", op, op.String())
		}
	}
}

func TestTypeInference(t *testing.T) {
	if (&Bin{Op: Add, L: intCol(0), R: ic(1)}).Type() != vector.Int64 {
		t.Error("int+int should be int")
	}
	if (&Bin{Op: Add, L: intCol(0), R: fc(1)}).Type() != vector.Float64 {
		t.Error("int+float should be float")
	}
	if (&Bin{Op: Div, L: intCol(0), R: ic(2)}).Type() != vector.Float64 {
		t.Error("div should be float")
	}
	if (&Cmp{Op: algebra.Lt, L: intCol(0), R: ic(0)}).Type() != vector.Bool {
		t.Error("cmp should be bool")
	}
	if (&And{L: nil, R: nil}).Type() != vector.Bool || (&Or{}).Type() != vector.Bool || (&Not{}).Type() != vector.Bool {
		t.Error("logical types")
	}
}

func TestEvalArithInt(t *testing.T) {
	a := vector.FromInt64([]int64{1, 2, 3})
	b := vector.FromInt64([]int64{10, 20, 30})
	e := &Bin{Op: Add, L: &Bin{Op: Mul, L: intCol(0), R: ic(2)}, R: intCol(1)}
	got, err := Eval(e, env(a, b))
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{12, 24, 36}
	for i, w := range want {
		if got.Get(i).I != w {
			t.Errorf("row %d: %d want %d", i, got.Get(i).I, w)
		}
	}
	sub, err := Eval(&Bin{Op: Sub, L: intCol(1), R: intCol(0)}, env(a, b))
	if err != nil || sub.Get(2).I != 27 {
		t.Errorf("sub: %v %v", sub, err)
	}
	mod, err := Eval(&Bin{Op: Mod, L: intCol(1), R: ic(7)}, env(a, b))
	if err != nil || mod.Get(1).I != 6 {
		t.Errorf("mod: %v %v", mod, err)
	}
}

func TestEvalDivAlwaysFloat(t *testing.T) {
	a := vector.FromInt64([]int64{7, 8})
	got, err := Eval(&Bin{Op: Div, L: intCol(0), R: ic(2)}, env(a))
	if err != nil {
		t.Fatal(err)
	}
	if got.Type() != vector.Float64 || got.Get(0).F != 3.5 || got.Get(1).F != 4.0 {
		t.Errorf("div: %v", got)
	}
}

func TestEvalDivByZeroYieldsZero(t *testing.T) {
	a := vector.FromInt64([]int64{7})
	got, err := Eval(&Bin{Op: Div, L: intCol(0), R: ic(0)}, env(a))
	if err != nil || got.Get(0).F != 0 {
		t.Errorf("div-by-zero guard: %v %v", got, err)
	}
}

func TestEvalModByZeroErrors(t *testing.T) {
	a := vector.FromInt64([]int64{7})
	if _, err := Eval(&Bin{Op: Mod, L: intCol(0), R: ic(0)}, env(a)); err == nil {
		t.Error("mod by zero should error")
	}
}

func TestEvalFloatMod(t *testing.T) {
	a := vector.FromFloat64([]float64{7})
	if _, err := Eval(&Bin{Op: Mod, L: floatCol(0), R: fc(2)}, env(a)); err == nil {
		t.Error("float mod should error")
	}
}

func TestEvalWithSelection(t *testing.T) {
	a := vector.FromInt64([]int64{1, 2, 3, 4})
	e := &Bin{Op: Mul, L: intCol(0), R: ic(10)}
	got, err := Eval(e, &Env{Cols: []*vector.Vector{a}, Sel: vector.Sel{3, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 || got.Get(0).I != 40 || got.Get(1).I != 20 {
		t.Errorf("sel eval: %v", got)
	}
}

func TestEvalCmpAndLogical(t *testing.T) {
	a := vector.FromInt64([]int64{1, 5, 9})
	gt := &Cmp{Op: algebra.Gt, L: intCol(0), R: ic(2)}
	lt := &Cmp{Op: algebra.Lt, L: intCol(0), R: ic(8)}
	and, err := Eval(&And{L: gt, R: lt}, env(a))
	if err != nil {
		t.Fatal(err)
	}
	if and.Get(0).B || !and.Get(1).B || and.Get(2).B {
		t.Errorf("and: %v", and)
	}
	or, err := Eval(&Or{L: gt, R: lt}, env(a))
	if err != nil {
		t.Fatal(err)
	}
	if !or.Get(0).B || !or.Get(1).B || !or.Get(2).B {
		t.Errorf("or: %v", or)
	}
	not, err := Eval(&Not{E: gt}, env(a))
	if err != nil {
		t.Fatal(err)
	}
	if !not.Get(0).B || not.Get(1).B {
		t.Errorf("not: %v", not)
	}
}

func TestEvalAllCmpOps(t *testing.T) {
	a := vector.FromInt64([]int64{1, 2, 3})
	cases := []struct {
		op   algebra.CmpOp
		want []bool
	}{
		{algebra.Lt, []bool{true, false, false}},
		{algebra.Le, []bool{true, true, false}},
		{algebra.Gt, []bool{false, false, true}},
		{algebra.Ge, []bool{false, true, true}},
		{algebra.Eq, []bool{false, true, false}},
		{algebra.Ne, []bool{true, false, true}},
	}
	for _, c := range cases {
		got, err := Eval(&Cmp{Op: c.op, L: intCol(0), R: ic(2)}, env(a))
		if err != nil {
			t.Fatal(err)
		}
		for i, w := range c.want {
			if got.Get(i).B != w {
				t.Errorf("op %v row %d: %v want %v", c.op, i, got.Get(i).B, w)
			}
		}
	}
}

func TestEvalColOutOfRange(t *testing.T) {
	if _, err := Eval(intCol(3), env(vector.FromInt64([]int64{1}))); err == nil {
		t.Error("out-of-range col should error")
	}
}

func TestEvalConst(t *testing.T) {
	a := vector.FromInt64([]int64{1, 2})
	got, err := Eval(ic(7), env(a))
	if err != nil || got.Len() != 2 || got.Get(1).I != 7 {
		t.Errorf("const broadcast: %v %v", got, err)
	}
}

func TestEvalScalar(t *testing.T) {
	v, err := EvalScalar(&Bin{Op: Add, L: ic(3), R: ic(4)})
	if err != nil || v.I != 7 {
		t.Errorf("scalar: %v %v", v, err)
	}
	v, err = EvalScalar(ic(5))
	if err != nil || v.I != 5 {
		t.Errorf("scalar const: %v %v", v, err)
	}
}

func TestIsConstAndColumns(t *testing.T) {
	e := &And{
		L: &Cmp{Op: algebra.Gt, L: intCol(2), R: ic(0)},
		R: &Or{L: &Cmp{Op: algebra.Lt, L: intCol(0), R: intCol(2)}, R: &Not{E: &Cmp{Op: algebra.Eq, L: intCol(1), R: ic(9)}}},
	}
	cols := Columns(e)
	if len(cols) != 3 || cols[0] != 2 || cols[1] != 0 || cols[2] != 1 {
		t.Errorf("columns: %v", cols)
	}
	if IsConst(e) {
		t.Error("expr with cols reported const")
	}
	if !IsConst(&Bin{Op: Add, L: ic(1), R: ic(2)}) {
		t.Error("const expr not reported const")
	}
}

func TestRewrite(t *testing.T) {
	e := &Bin{Op: Add, L: intCol(0), R: &Bin{Op: Mul, L: intCol(1), R: ic(3)}}
	shifted := Rewrite(e, func(c *Col) Expr {
		return &Col{Index: c.Index + 10, Typ: c.Typ}
	})
	cols := Columns(shifted)
	if len(cols) != 2 || cols[0] != 10 || cols[1] != 11 {
		t.Errorf("rewrite cols: %v", cols)
	}
	// Original untouched.
	if Columns(e)[0] != 0 {
		t.Error("rewrite mutated original")
	}
}

func TestStringRendering(t *testing.T) {
	e := &And{
		L: &Cmp{Op: algebra.Gt, L: &Col{Index: 0, Name: "x1", Typ: vector.Int64}, R: ic(5)},
		R: &Not{E: &Cmp{Op: algebra.Eq, L: intCol(1), R: &Const{Val: vector.StrValue("a")}}},
	}
	got := e.String()
	want := `((x1 > 5) AND (NOT ($1 = "a")))`
	if got != want {
		t.Errorf("String() = %q want %q", got, want)
	}
}

// Property: (a+b)-b == a for int64 columns.
func TestAddSubRoundTripProperty(t *testing.T) {
	f := func(as, bs []int32) bool {
		n := len(as)
		if len(bs) < n {
			n = len(bs)
		}
		av := make([]int64, n)
		bv := make([]int64, n)
		for i := 0; i < n; i++ {
			av[i], bv[i] = int64(as[i]), int64(bs[i])
		}
		e := &Bin{Op: Sub, L: &Bin{Op: Add, L: intCol(0), R: intCol(1)}, R: intCol(1)}
		got, err := Eval(e, env(vector.FromInt64(av), vector.FromInt64(bv)))
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			if got.Get(i).I != av[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
