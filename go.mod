module datacell

go 1.24
