package datacell

import (
	"testing"
)

// Public-API round-trip: a persistent DB is crashed (abandoned) and
// reopened; the recovered query replays its windows and continues.

func keyTables(rs []*Result) []string {
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.Table.String()
	}
	return out
}

func TestOpenRecoversAndReplays(t *testing.T) {
	root := t.TempDir()
	db, err := OpenConfig(root, StoreConfig{SealRows: 32})
	if err != nil {
		t.Fatal(err)
	}
	if !db.Durable() || db.DataDir() != root {
		t.Fatalf("Durable=%v DataDir=%q", db.Durable(), db.DataDir())
	}
	db.MustRegisterStream("s", Col("x1", Int64), Col("x2", Int64))
	q, err := db.Register(`SELECT x1, sum(x2) FROM s [RANGE 20 SLIDE 10] GROUP BY x1`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 95; i++ {
		ts := []int64{int64(i) * 1000}
		if err := db.AppendAt("s", ts, []Value{Int(int64(i % 4)), Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Pump(); err != nil {
		t.Fatal(err)
	}
	before := q.Results()
	if len(before) == 0 {
		t.Fatal("no windows before crash")
	}
	// Crash: close the directory without deregistering anything.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := OpenConfig(root, StoreConfig{SealRows: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	rec := db2.RecoveredQueries()
	if len(rec) != 1 {
		t.Fatalf("recovered %d queries, want 1", len(rec))
	}
	if _, err := db2.Pump(); err != nil {
		t.Fatal(err)
	}
	after := rec[0].Results()
	w, g := keyTables(before), keyTables(after)
	if len(w) != len(g) {
		t.Fatalf("replayed %d windows, want %d", len(g), len(w))
	}
	for i := range w {
		if w[i] != g[i] {
			t.Fatalf("window %d differs after recovery:\nwant %s\ngot  %s", i+1, w[i], g[i])
		}
	}

	// The arrival clock resumes past the replayed event times: a
	// wall-clock Append must stamp above the recovered watermark.
	c, err := db2.clock("s")
	if err != nil {
		t.Fatal(err)
	}
	if c.last < 94*1000 {
		t.Fatalf("clock seeded at %d, want >= %d", c.last, 94*1000)
	}

	// Storage stats surface through the public API.
	st, ok := db2.StreamStorage("s")
	if !ok || !st.Durable || st.Segments == 0 {
		t.Fatalf("StreamStorage = %+v, %v", st, ok)
	}
	if all := db2.StorageByStream(); len(all) != 1 {
		t.Fatalf("StorageByStream has %d entries", len(all))
	}
}

func TestAdoptRecovered(t *testing.T) {
	root := t.TempDir()
	db, err := OpenConfig(root, StoreConfig{SealRows: 32})
	if err != nil {
		t.Fatal(err)
	}
	db.MustRegisterStream("s", Col("x1", Int64), Col("x2", Int64))
	const sql = `SELECT sum(x2) FROM s [RANGE 10 SLIDE 5]`
	if _, err := db.Register(sql, Options{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := db.AppendAt("s", []int64{int64(i)}, []Value{Int(1), Int(2)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Pump(); err != nil {
		t.Fatal(err)
	}
	db.Close()

	db2, err := OpenConfig(root, StoreConfig{SealRows: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if q := db2.AdoptRecovered("SELECT count(*) FROM s [RANGE 10 SLIDE 5]", Incremental); q != nil {
		t.Fatal("adopted a query with different SQL")
	}
	if q := db2.AdoptRecovered(sql, Reevaluation); q != nil {
		t.Fatal("adopted a query with different mode")
	}
	// Whitespace-insensitive match.
	q := db2.AdoptRecovered("SELECT  sum(x2)  FROM s\n[RANGE 10 SLIDE 5]", Incremental)
	if q == nil {
		t.Fatal("normalized statement did not adopt")
	}
	if len(db2.RecoveredQueries()) != 0 {
		t.Fatal("adoption left the query in the recovered list")
	}
	if q2 := db2.AdoptRecovered(sql, Incremental); q2 != nil {
		t.Fatal("double adoption")
	}
	// The adopted query is live: replay lands in its buffer.
	if _, err := db2.Pump(); err != nil {
		t.Fatal(err)
	}
	if rs := q.Results(); len(rs) == 0 {
		t.Fatal("adopted query replayed no windows")
	}
}

func TestOpenMemoryDBUnaffected(t *testing.T) {
	db := New()
	if db.Durable() || db.DataDir() != "" {
		t.Fatal("memory DB claims durability")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}
