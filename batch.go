package datacell

import (
	"fmt"

	"datacell/internal/vector"
)

// Batch is a reusable columnar staging buffer for stream ingest: the
// public surface of the kernel's native format. Values are appended
// through typed, allocation-free column appenders (or the boxed AppendRow
// fallback) and handed to the engine in one call via DB.AppendBatch, which
// copies them into the subscriber baskets as typed bulk appends — no
// per-value boxing anywhere on the path. After AppendBatch the batch can
// be Reset and refilled, reusing its column storage.
//
//	b, _ := db.NewBatch("sensors")
//	room, temp := b.Int64Col("room"), b.Float64Col("temp")
//	for _, r := range readings {
//		room.Append(r.Room)
//		temp.Append(r.Celsius)
//	}
//	db.AppendBatch("sensors", b)
//	b.Reset()
type Batch struct {
	defs []ColumnDef
	cols []*vector.Vector
}

// NewBatch creates a batch with the given columns. The column set must
// match the schema of the stream it is appended to; DB.NewBatch derives it
// from a registered stream directly.
func NewBatch(cols ...ColumnDef) *Batch {
	b := &Batch{defs: append([]ColumnDef(nil), cols...)}
	b.cols = make([]*vector.Vector, len(cols))
	for i, c := range cols {
		b.cols[i] = vector.New(c.Type, 0)
	}
	return b
}

// NewBatch creates a batch shaped like the registered stream's schema.
func (db *DB) NewBatch(stream string) (*Batch, error) {
	schema, ok := db.eng.StreamSchema(stream)
	if !ok {
		return nil, fmt.Errorf("datacell: unknown stream %q", stream)
	}
	defs := make([]ColumnDef, len(schema.Cols))
	for i, c := range schema.Cols {
		defs[i] = ColumnDef{Name: c.Name, Type: c.Type}
	}
	return NewBatch(defs...), nil
}

// Columns returns the batch's column definitions (shared slice; read-only).
func (b *Batch) Columns() []ColumnDef { return b.defs }

// Len returns the number of complete rows in the batch: the length of the
// shortest column. Columns left behind by partial appender use surface as
// an error at AppendBatch time, not here.
func (b *Batch) Len() int {
	if len(b.cols) == 0 {
		return 0
	}
	n := b.cols[0].Len()
	for _, c := range b.cols[1:] {
		if l := c.Len(); l < n {
			n = l
		}
	}
	return n
}

// Reset drops all rows, keeping the column storage for reuse.
func (b *Batch) Reset() {
	for _, c := range b.cols {
		c.Truncate(0)
	}
}

// AppendRow appends one boxed row — the compatibility fallback for callers
// that cannot use the typed appenders. Values must match the column types
// (Int64 and Timestamp are interchangeable).
func (b *Batch) AppendRow(vals ...Value) error {
	if len(vals) != len(b.cols) {
		return fmt.Errorf("datacell: batch row arity %d, want %d", len(vals), len(b.cols))
	}
	for i, v := range vals {
		want := b.defs[i].Type
		if v.Typ != want && !(vector.IntKind(v.Typ) && vector.IntKind(want)) {
			return fmt.Errorf("datacell: batch column %s expects %s, got %s", b.defs[i].Name, want, v.Typ)
		}
	}
	for i, v := range vals {
		b.cols[i].AppendValue(v)
	}
	return nil
}

func (b *Batch) col(name string, want ...Type) *vector.Vector {
	for i, d := range b.defs {
		if d.Name != name {
			continue
		}
		for _, t := range want {
			if d.Type == t {
				return b.cols[i]
			}
		}
		panic(fmt.Sprintf("datacell: batch column %s is %s, not %s", name, d.Type, want[0]))
	}
	panic(fmt.Sprintf("datacell: batch has no column %q", name))
}

// Int64Appender appends int64 values to one Int64 (or Timestamp) column
// without boxing. The zero value is invalid; obtain appenders from
// Batch.Int64Col or Batch.TimestampCol.
type Int64Appender struct{ v *vector.Vector }

// Append appends one value.
func (a Int64Appender) Append(x int64) { a.v.AppendInt64(x) }

// AppendSlice bulk-appends xs.
func (a Int64Appender) AppendSlice(xs []int64) { a.v.AppendInt64s(xs) }

// Float64Appender appends float64 values to one Float64 column.
type Float64Appender struct{ v *vector.Vector }

// Append appends one value.
func (a Float64Appender) Append(x float64) { a.v.AppendFloat64(x) }

// AppendSlice bulk-appends xs.
func (a Float64Appender) AppendSlice(xs []float64) { a.v.AppendFloat64s(xs) }

// StringAppender appends string values to one String column.
type StringAppender struct{ v *vector.Vector }

// Append appends one value.
func (a StringAppender) Append(x string) { a.v.AppendStr(x) }

// AppendSlice bulk-appends xs.
func (a StringAppender) AppendSlice(xs []string) { a.v.AppendStrs(xs) }

// BoolAppender appends bool values to one Bool column.
type BoolAppender struct{ v *vector.Vector }

// Append appends one value.
func (a BoolAppender) Append(x bool) { a.v.AppendBool(x) }

// AppendSlice bulk-appends xs.
func (a BoolAppender) AppendSlice(xs []bool) { a.v.AppendBools(xs) }

// Int64Col returns the typed appender for an Int64 (or Timestamp) column.
// It panics on an unknown name or mismatched type — appender lookup is a
// programming error, caught once at wiring time, so the per-value Append
// path stays check-free. Fetch appenders once and reuse them.
func (b *Batch) Int64Col(name string) Int64Appender {
	return Int64Appender{v: b.col(name, Int64, Timestamp)}
}

// TimestampCol returns the typed appender for a Timestamp column
// (microsecond int64 values); the same panic rules as Int64Col apply.
func (b *Batch) TimestampCol(name string) Int64Appender {
	return Int64Appender{v: b.col(name, Timestamp, Int64)}
}

// Float64Col returns the typed appender for a Float64 column; the same
// panic rules as Int64Col apply.
func (b *Batch) Float64Col(name string) Float64Appender {
	return Float64Appender{v: b.col(name, Float64)}
}

// StringCol returns the typed appender for a String column; the same panic
// rules as Int64Col apply.
func (b *Batch) StringCol(name string) StringAppender {
	return StringAppender{v: b.col(name, String)}
}

// BoolCol returns the typed appender for a Bool column; the same panic
// rules as Int64Col apply.
func (b *Batch) BoolCol(name string) BoolAppender {
	return BoolAppender{v: b.col(name, Bool)}
}

// checkRect verifies every column holds exactly n rows.
func (b *Batch) checkRect() (int, error) {
	if len(b.cols) == 0 {
		return 0, fmt.Errorf("datacell: batch has no columns")
	}
	n := b.cols[0].Len()
	for i, c := range b.cols[1:] {
		if c.Len() != n {
			return 0, fmt.Errorf("datacell: ragged batch: column %s has %d rows, column %s has %d",
				b.defs[i+1].Name, c.Len(), b.defs[0].Name, n)
		}
	}
	return n, nil
}

// AppendBatch delivers the batch to a stream (the columnar receptor fast
// path). All rows share one strictly-increasing wall-clock arrival
// timestamp, exactly like Append. The batch's values are copied into the
// subscriber baskets, so the caller may Reset and refill it immediately.
func (db *DB) AppendBatch(stream string, b *Batch) error {
	n, err := b.checkRect()
	if err != nil {
		return err
	}
	c, err := db.clock(stream)
	if err != nil {
		return err
	}
	if n == 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	ts := make([]int64, n)
	now := c.stampLocked()
	for i := range ts {
		ts[i] = now
	}
	return db.eng.AppendColumns(stream, b.cols, ts)
}

// AppendBatchAt is AppendBatch with explicit event timestamps, one per row
// in non-decreasing order — the columnar form of AppendAt.
func (db *DB) AppendBatchAt(stream string, ts []int64, b *Batch) error {
	n, err := b.checkRect()
	if err != nil {
		return err
	}
	if err := validateEventTimes("AppendBatchAt", ts, n); err != nil {
		return err
	}
	c, err := db.clock(stream)
	if err != nil {
		return err
	}
	if n == 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := db.eng.AppendColumns(stream, b.cols, ts); err != nil {
		return err
	}
	c.noteLocked(ts[n-1])
	return nil
}
