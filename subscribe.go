package datacell

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"sync"
	"sync/atomic"
)

// Delivery errors returned by Subscribe.
var (
	// ErrSubscribed is returned by Subscribe when the query already has an
	// active subscription.
	ErrSubscribed = errors.New("datacell: query already has an active subscription")
	// ErrHasHandler is returned by Subscribe when the query already has an
	// OnResult handler installed.
	ErrHasHandler = errors.New("datacell: query already has an OnResult handler")
)

// OverflowPolicy says what a subscription does when its channel buffer is
// full and the producer has another result.
type OverflowPolicy uint8

const (
	// Block applies backpressure: the query's step blocks until the
	// consumer reads or the subscription's context is cancelled. This is
	// the default.
	Block OverflowPolicy = iota
	// DropOldest discards the oldest undelivered result to make room for
	// the newest — bounded staleness instead of backpressure. With an
	// unbuffered channel (Buffer 0) a result is dropped whenever no
	// receiver is ready.
	DropOldest
)

// SubOptions configure a subscription.
type SubOptions struct {
	// Buffer is the result channel capacity (0 = unbuffered).
	Buffer int
	// OnOverflow selects the full-buffer behavior (default Block).
	OnOverflow OverflowPolicy
}

// subscription is the channel-delivery sink behind Subscribe, Results2 and
// Drain. Senders serialize on sendMu, which close also takes before
// closing the channel — so a close can never race a send — while the
// closed flag is a separate atomic so isClosed never blocks behind a
// backpressured send. A blocking send selects on ctx.Done and stop, so
// both cancellation and Query.Close unblock it (and release sendMu)
// promptly.
type subscription struct {
	ch     chan *Result
	policy OverflowPolicy
	ctx    context.Context
	stop   chan struct{} // closed by close()
	ready  chan struct{} // closed once the pre-subscribe backlog replayed
	once   sync.Once
	closed atomic.Bool
	sendMu sync.Mutex

	// delivered/dropped point at the owning Query's cumulative counters
	// (nil for detached uses), so /metrics sees delivery totals across
	// resubscribes.
	delivered, dropped *atomic.Int64
}

// countDelivered bumps the owning query's delivered counter (if wired).
func (s *subscription) countDelivered() {
	if s.delivered != nil {
		s.delivered.Add(1)
	}
}

// countDropped bumps the owning query's dropped counter (if wired).
func (s *subscription) countDropped() {
	if s.dropped != nil {
		s.dropped.Add(1)
	}
}

// close shuts the subscription down (idempotent) and closes the result
// channel. Any in-flight blocking send observes stop and gives up first,
// releasing sendMu so the channel close cannot race it.
func (s *subscription) close() {
	s.once.Do(func() {
		s.closed.Store(true)
		close(s.stop)
		s.sendMu.Lock()
		close(s.ch)
		s.sendMu.Unlock()
	})
}

func (s *subscription) isClosed() bool { return s.closed.Load() }

// deliver hands a live result to the consumer, after the backlog replay
// has finished (so pre-subscribe results keep their order). It reports
// whether the result was accepted by the subscription; false means the
// caller should keep it for the next sink.
func (s *subscription) deliver(r *Result) bool {
	select {
	case <-s.ready:
	case <-s.stop:
		return false
	}
	return s.send(r)
}

// send pushes r into the channel under the subscription's policy.
func (s *subscription) send(r *Result) bool {
	s.sendMu.Lock()
	defer s.sendMu.Unlock()
	if s.closed.Load() {
		return false
	}
	select {
	case <-s.ctx.Done():
		// Already cancelled but not yet torn down: refuse the result so the
		// caller re-buffers it instead of racing the channel close.
		return false
	case <-s.stop:
		return false
	default:
	}
	if s.policy == DropOldest {
		for {
			select {
			case s.ch <- r:
				s.countDelivered()
				return true
			default:
			}
			select {
			case <-s.ch: // drop the oldest queued result, retry the send
				s.countDropped()
			default:
				if cap(s.ch) == 0 {
					// Unbuffered and no receiver ready: the policy drops r
					// itself — consumed per the policy, not lost by error.
					s.countDropped()
					return true
				}
				// Buffered channel momentarily drained by the consumer
				// between the two selects: the retried send will succeed.
			}
			if s.closed.Load() {
				return false
			}
		}
	}
	select {
	case s.ch <- r:
		s.countDelivered()
		return true
	case <-s.ctx.Done():
		return false
	case <-s.stop:
		return false
	}
}

// Subscribe returns a channel of window results with explicit cancellation
// and backpressure — the channel-native alternative to OnResult. Results
// buffered before the call (including anything a cancelled predecessor
// left undelivered) are replayed first, in order. The channel is closed
// when ctx is cancelled or the query is Closed; results the consumer never
// read are discarded on cancellation, while results produced after the
// cancellation buffer again for the next sink.
//
// A query has one delivery mechanism at a time: Subscribe fails with
// ErrHasHandler if OnResult was installed and ErrSubscribed if another
// subscription is still active.
func (q *Query) Subscribe(ctx context.Context, opts SubOptions) (<-chan *Result, error) {
	if opts.Buffer < 0 {
		return nil, fmt.Errorf("datacell: Subscribe: negative buffer %d", opts.Buffer)
	}
	if opts.OnOverflow > DropOldest {
		return nil, fmt.Errorf("datacell: Subscribe: unknown overflow policy %d", opts.OnOverflow)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	for {
		q.mu.Lock()
		if q.handler != nil {
			q.mu.Unlock()
			return nil, ErrHasHandler
		}
		old := q.sub
		if old == nil {
			break // q.mu stays held
		}
		if !old.isClosed() {
			q.mu.Unlock()
			return nil, ErrSubscribed
		}
		q.mu.Unlock()
		// Wait for the dead subscription's replay goroutine to finish —
		// it may still be restoring an unsent backlog tail into
		// q.buffered, which must be part of the snapshot below, ahead of
		// anything newer. Only detach it afterwards, so a concurrent
		// Subscribe cannot find q.sub == nil and skip this wait.
		<-old.ready
		q.mu.Lock()
		if q.sub == old {
			q.sub = nil
		}
		q.mu.Unlock()
	}
	s := &subscription{
		ch:        make(chan *Result, opts.Buffer),
		policy:    opts.OnOverflow,
		ctx:       ctx,
		stop:      make(chan struct{}),
		ready:     make(chan struct{}),
		delivered: &q.delivered,
		dropped:   &q.dropped,
	}
	backlog := q.buffered
	q.buffered = nil
	q.sub = s
	q.mu.Unlock()

	// Replay the backlog off the caller's goroutine (a Block-policy replay
	// longer than the buffer must wait for the consumer, and the consumer
	// only exists once Subscribe returned the channel). Live deliveries
	// gate on ready, so order is preserved.
	go func() {
		for i, r := range backlog {
			if !s.send(r) {
				// The subscription died mid-replay: keep the unsent tail
				// (ahead of anything re-buffered since) for the next sink.
				q.mu.Lock()
				q.buffered = append(append([]*Result(nil), backlog[i:]...), q.buffered...)
				q.mu.Unlock()
				break
			}
		}
		close(s.ready)
	}()
	// Watch for cancellation; detach the subscription once it is dead so
	// later results buffer again and a new Subscribe is allowed. Detach
	// only after the replay goroutine finished (closing stop aborts any
	// blocked send, so ready closes promptly): detaching earlier would let
	// a concurrent Subscribe find q.sub == nil and snapshot q.buffered
	// before the unsent backlog tail is restored.
	go func() {
		select {
		case <-ctx.Done():
		case <-s.stop:
		}
		s.close()
		<-s.ready
		q.mu.Lock()
		if q.sub == s {
			q.sub = nil
		}
		q.mu.Unlock()
	}()
	return s.ch, nil
}

// Results2 returns a Go 1.23 range-over-func iterator over the query's
// results: for r, err := range q.Results2() { ... }. It subscribes
// internally with Block backpressure, so ranging slowly slows the query
// rather than dropping results. The iteration ends when the consumer
// breaks, when the query is Closed, or — after yielding (nil, err) — when
// subscribing fails or the query's worker has died (Query.Err).
func (q *Query) Results2() iter.Seq2[*Result, error] {
	return func(yield func(*Result, error) bool) {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		ch, err := q.Subscribe(ctx, SubOptions{Buffer: 64})
		if err != nil {
			yield(nil, err)
			return
		}
		for r := range ch {
			if !yield(r, nil) {
				return
			}
		}
		if err := q.Err(); err != nil {
			yield(nil, err)
		}
	}
}

// Sink consumes window results — the emitter-side half of the unified
// Source/Sink I/O surface. Write is called once per result, in order; a
// blocking Write must honor ctx so Drain can be cancelled mid-write.
type Sink interface {
	Write(ctx context.Context, r *Result) error
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(context.Context, *Result) error

// Write implements Sink.
func (f SinkFunc) Write(ctx context.Context, r *Result) error { return f(ctx, r) }

// ChanSink returns a Sink that forwards every result to ch, blocking until
// the send succeeds or ctx is cancelled.
func ChanSink(ch chan<- *Result) Sink {
	return SinkFunc(func(ctx context.Context, r *Result) error {
		select {
		case ch <- r:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	})
}

// Drain subscribes to the query and writes every result to sink until ctx
// is cancelled, the query is Closed, or sink returns an error (which Drain
// returns). It returns ctx.Err() on cancellation and nil when the query
// was closed.
func (q *Query) Drain(ctx context.Context, sink Sink) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch, err := q.Subscribe(ctx, SubOptions{Buffer: 64})
	if err != nil {
		return err
	}
	for r := range ch {
		if err := sink.Write(ctx, r); err != nil {
			return err
		}
	}
	return ctx.Err()
}
