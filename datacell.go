// Package datacell is a stream engine built inside a relational column-store
// kernel, reproducing "Enhanced Stream Processing in a DBMS Kernel"
// (Liarou, Idreos, Manegold, Kersten — EDBT 2013).
//
// DataCell evaluates continuous sliding-window SQL queries by rewriting
// ordinary (optimized) relational query plans into incremental plans at the
// plan level: the stream is split into basic windows, the deepest possible
// plan prefix is replicated per basic window, partial intermediates are
// merged with concatenation + compensation operators, and the intermediates
// slide along with the window. The underlying storage and execution engine
// is an unmodified bulk columnar kernel.
//
// # Quick start
//
//	dc := datacell.New()
//	dc.MustRegisterStream("sensors", datacell.Col("room", datacell.Int64),
//		datacell.Col("temp", datacell.Float64))
//
//	q, _ := dc.Register(
//		`SELECT room, avg(temp) FROM sensors [RANGE 1000 SLIDE 100] GROUP BY room`,
//		datacell.Options{})
//	q.OnResult(func(r *datacell.Result) {
//		fmt.Println(r.Table)
//	})
//
//	dc.Append("sensors", rows...)   // receptor side
//	dc.Pump()                       // or dc.Run() for a background scheduler
//
// Queries run in one of two modes: Incremental (the paper's contribution,
// default) or Reevaluation (the DataCellR baseline that recomputes every
// window from scratch). Both modes produce identical results; the
// difference is purely in work performed per slide.
package datacell

import (
	"fmt"
	"sync"
	"time"

	"datacell/internal/catalog"
	"datacell/internal/engine"
	"datacell/internal/exec"
	"datacell/internal/vector"
)

// Type is a column type.
type Type = vector.Type

// Column types.
const (
	Int64     = vector.Int64
	Float64   = vector.Float64
	String    = vector.Str
	Bool      = vector.Bool
	Timestamp = vector.Timestamp
)

// Value is a boxed scalar (see Int, Float, Str and Boolean constructors).
type Value = vector.Value

// Int boxes an int64 value.
func Int(x int64) Value { return vector.IntValue(x) }

// Float boxes a float64 value.
func Float(x float64) Value { return vector.FloatValue(x) }

// Str boxes a string value.
func Str(x string) Value { return vector.StrValue(x) }

// Boolean boxes a bool value.
func Boolean(x bool) Value { return vector.BoolValue(x) }

// ColumnDef declares one attribute of a stream or table.
type ColumnDef struct {
	Name string
	Type Type
}

// Col is a convenience constructor for ColumnDef.
func Col(name string, t Type) ColumnDef { return ColumnDef{Name: name, Type: t} }

// Mode selects how a continuous query executes.
type Mode = engine.Mode

// Execution modes.
const (
	// Incremental is the paper's plan-level incremental processing.
	Incremental = engine.Incremental
	// Reevaluation recomputes the full window every slide (DataCellR).
	Reevaluation = engine.Reevaluation
	// Auto selects per query between the two, preferring re-evaluation for
	// small windows and incremental processing for large ones — the hybrid
	// system the paper suggests in Section 4.2.
	Auto = engine.Auto
)

// Options configure a continuous query.
type Options struct {
	// Mode defaults to Incremental.
	Mode Mode
	// AutoThreshold overrides the Auto-mode window-size cutoff (tuples).
	AutoThreshold int64
	// Chunks > 1 processes each basic window in that many early chunks
	// (single-stream queries only).
	Chunks int
	// AdaptiveChunks enables the self-tuning chunk controller (Fig 8).
	AdaptiveChunks bool
}

// Result is one window result.
type Result struct {
	// Window is the 1-based window sequence number.
	Window int
	// Table holds the result rows.
	Table *exec.Table
	// Latency is the processing time of the step that emitted this window.
	Latency time.Duration
	// MainLatency and MergeLatency split Latency into the original plan's
	// work and the incremental merge overhead (incremental mode only).
	MainLatency, MergeLatency time.Duration
}

// Table re-exports the result table type.
type Table = exec.Table

// DB is a DataCell instance: catalog, baskets, factories and scheduler.
type DB struct {
	eng *engine.Engine
}

// New creates an empty instance.
func New() *DB {
	return &DB{eng: engine.New()}
}

func toSchema(cols []ColumnDef) (catalog.Schema, error) {
	if len(cols) == 0 {
		return catalog.Schema{}, fmt.Errorf("datacell: at least one column required")
	}
	s := catalog.Schema{}
	for _, c := range cols {
		s.Cols = append(s.Cols, catalog.Column{Name: c.Name, Type: c.Type})
	}
	return s, nil
}

// RegisterStream declares a stream with the given columns.
func (db *DB) RegisterStream(name string, cols ...ColumnDef) error {
	s, err := toSchema(cols)
	if err != nil {
		return err
	}
	return db.eng.RegisterStream(name, s)
}

// MustRegisterStream is RegisterStream panicking on error.
func (db *DB) MustRegisterStream(name string, cols ...ColumnDef) {
	if err := db.RegisterStream(name, cols...); err != nil {
		panic(err)
	}
}

// RegisterTable declares a persistent table with the given columns.
func (db *DB) RegisterTable(name string, cols ...ColumnDef) error {
	s, err := toSchema(cols)
	if err != nil {
		return err
	}
	return db.eng.RegisterTable(name, s)
}

// MustRegisterTable is RegisterTable panicking on error.
func (db *DB) MustRegisterTable(name string, cols ...ColumnDef) {
	if err := db.RegisterTable(name, cols...); err != nil {
		panic(err)
	}
}

// InsertRows appends rows into a persistent table.
func (db *DB) InsertRows(table string, rows ...[]Value) error {
	if len(rows) == 0 {
		return nil
	}
	cols, err := rowsToCols(rows)
	if err != nil {
		return err
	}
	return db.eng.InsertTable(table, cols)
}

// Append delivers stream tuples (the receptor side). Timestamps default to
// the arrival wall clock in microseconds.
func (db *DB) Append(stream string, rows ...[]Value) error {
	if len(rows) == 0 {
		return nil
	}
	ts := make([]int64, len(rows))
	now := time.Now().UnixMicro()
	for i := range ts {
		ts[i] = now
	}
	return db.eng.AppendRows(stream, rows, ts)
}

// AppendAt delivers stream tuples with explicit event timestamps
// (microseconds), required for time-based windows with event-time
// semantics.
func (db *DB) AppendAt(stream string, ts []int64, rows ...[]Value) error {
	return db.eng.AppendRows(stream, rows, ts)
}

// SetWatermark advances a stream's event-time watermark so time windows
// can close without further tuples.
func (db *DB) SetWatermark(stream string, tsMicros int64) error {
	return db.eng.SetWatermark(stream, tsMicros)
}

func rowsToCols(rows [][]Value) ([]*vector.Vector, error) {
	arity := len(rows[0])
	cols := make([]*vector.Vector, arity)
	for i := range cols {
		cols[i] = vector.New(rows[0][i].Typ, len(rows))
	}
	for _, r := range rows {
		if len(r) != arity {
			return nil, fmt.Errorf("datacell: ragged rows (%d vs %d values)", len(r), arity)
		}
		for i, v := range r {
			cols[i].AppendValue(v)
		}
	}
	return cols, nil
}

// Query is a registered continuous query.
type Query struct {
	db *DB
	cq *engine.ContinuousQuery

	mu       sync.Mutex
	handler  func(*Result)
	buffered []*Result
}

// Register compiles and installs a continuous query written in the
// DataCell SQL dialect (see the package documentation and README).
func (db *DB) Register(query string, opts Options) (*Query, error) {
	q := &Query{db: db}
	cq, err := db.eng.Register(query, engine.Options{
		Mode:           opts.Mode,
		AutoThreshold:  opts.AutoThreshold,
		Chunks:         opts.Chunks,
		AdaptiveChunks: opts.AdaptiveChunks,
		OnResult: func(r *engine.Result) {
			q.deliver(&Result{
				Window:       r.Window,
				Table:        r.Table,
				Latency:      time.Duration(r.StepNS),
				MainLatency:  time.Duration(r.Stats.MainNS),
				MergeLatency: time.Duration(r.Stats.MergeNS),
			})
		},
	})
	if err != nil {
		return nil, err
	}
	q.cq = cq
	return q, nil
}

func (q *Query) deliver(r *Result) {
	q.mu.Lock()
	h := q.handler
	if h == nil {
		q.buffered = append(q.buffered, r)
	}
	q.mu.Unlock()
	if h != nil {
		h(r)
	}
}

// OnResult installs the result handler; any results buffered before the
// handler was installed are replayed first (in order).
func (q *Query) OnResult(h func(*Result)) {
	q.mu.Lock()
	backlog := q.buffered
	q.buffered = nil
	q.handler = h
	q.mu.Unlock()
	for _, r := range backlog {
		h(r)
	}
}

// Results drains and returns the results buffered so far (only meaningful
// when no OnResult handler is installed).
func (q *Query) Results() []*Result {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := q.buffered
	q.buffered = nil
	return out
}

// Windows reports how many window results have been produced.
func (q *Query) Windows() int { return q.cq.Windows() }

// SQL returns the query text.
func (q *Query) SQL() string { return q.cq.SQL }

// Mode returns the execution mode.
func (q *Query) Mode() Mode { return q.cq.Mode }

// Err returns the terminal error of this query's worker goroutine, or nil
// while the query is healthy. A failed query stops producing results until
// the scheduler is restarted (Stop then Run), which retries it.
func (q *Query) Err() error { return q.cq.Err() }

// Close deregisters the query. If the scheduler is running, the query's
// worker is stopped first (blocking until any in-flight step finishes).
// Close may be called from inside the query's own OnResult callback —
// e.g. to stop after the first result — in which case the in-flight step
// finishes just after Close returns.
func (q *Query) Close() { q.db.eng.Deregister(q.cq) }

// QueryOnce runs a one-time query over persistent tables.
func (db *DB) QueryOnce(query string) (*Table, error) { return db.eng.QueryOnce(query) }

// Pump synchronously fires every query that has enough buffered data and
// returns the number of steps executed, in registration order on the
// calling goroutine. Use it for deterministic processing (tests,
// benchmarks, batch drivers).
func (db *DB) Pump() (int, error) { return db.eng.Pump() }

// PumpParallel is the concurrent form of Pump: queries fire in parallel
// over a bounded pool of at most workers goroutines (workers <= 0 means
// GOMAXPROCS). Each query's steps stay ordered; cross-query interleaving
// does not. It returns once no query can fire anymore.
func (db *DB) PumpParallel(workers int) (int, error) { return db.eng.PumpParallel(workers) }

// Run starts the concurrent factory scheduler: every registered query gets
// its own worker goroutine, woken by the receptor side only when one of
// its input streams receives data, so independent queries process in
// parallel. Queries registered while running get workers immediately.
//
// Run is idempotent and restartable: after Stop, calling Run again clears
// any stored error (see Err) and resumes all queries from their buffered
// state. A query whose step fails stops producing (its error is reported
// by Err and Query.Err) without affecting other queries.
func (db *DB) Run() { db.eng.Start() }

// Stop halts the scheduler, blocking until in-flight window steps finish
// (no-op when not running). Buffered data stays in the baskets: a later
// Run or Pump resumes exactly where the workers left off. Per-query
// worker errors survive Stop and stay available via Err until the next
// Run. Stop may be called from inside an OnResult callback; the calling
// query's in-flight step then finishes just after Stop returns.
func (db *DB) Stop() { db.eng.Stop() }

// Running reports whether the background scheduler is active.
func (db *DB) Running() bool { return db.eng.Running() }

// Err returns the first error any query worker has hit since the last Run
// (nil while all factories are healthy). Errors survive Stop — and Close
// of the failed query — and are cleared by the next Run, which retries
// the failed queries.
func (db *DB) Err() error { return db.eng.Err() }
