// Package datacell is a stream engine built inside a relational column-store
// kernel, reproducing "Enhanced Stream Processing in a DBMS Kernel"
// (Liarou, Idreos, Manegold, Kersten — EDBT 2013).
//
// DataCell evaluates continuous sliding-window SQL queries by rewriting
// ordinary (optimized) relational query plans into incremental plans at the
// plan level: the stream is split into basic windows, the deepest possible
// plan prefix is replicated per basic window, partial intermediates are
// merged with concatenation + compensation operators, and the intermediates
// slide along with the window. The underlying storage and execution engine
// is an unmodified bulk columnar kernel.
//
// # Quick start
//
//	dc := datacell.New()
//	dc.MustRegisterStream("sensors", datacell.Col("room", datacell.Int64),
//		datacell.Col("temp", datacell.Float64))
//
//	q, _ := dc.Register(
//		`SELECT room, avg(temp) FROM sensors [RANGE 1000 SLIDE 100] GROUP BY room`,
//		datacell.Options{})
//	results, _ := q.Subscribe(ctx, datacell.SubOptions{Buffer: 16})
//	go func() {
//		for r := range results {
//			fmt.Println(r.Table)
//		}
//	}()
//
//	// Receptor side: columnar batches, no per-value boxing.
//	b, _ := dc.NewBatch("sensors")
//	room, temp := b.Int64Col("room"), b.Float64Col("temp")
//	for _, s := range samples {
//		room.Append(s.Room)
//		temp.Append(s.Temp)
//	}
//	dc.AppendBatch("sensors", b)
//	dc.Pump() // or dc.Run() for a background scheduler
//
// The row-oriented Append and callback-style OnResult remain as
// compatibility wrappers over the same core.
//
// Queries run in one of two modes: Incremental (the paper's contribution,
// default) or Reevaluation (the DataCellR baseline that recomputes every
// window from scratch). Both modes produce identical results; the
// difference is purely in work performed per slide.
package datacell

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"datacell/internal/catalog"
	"datacell/internal/engine"
	"datacell/internal/exec"
	"datacell/internal/storage"
	"datacell/internal/vector"
)

// Type is a column type.
type Type = vector.Type

// Column types.
const (
	Int64     = vector.Int64
	Float64   = vector.Float64
	String    = vector.Str
	Bool      = vector.Bool
	Timestamp = vector.Timestamp
)

// Value is a boxed scalar (see Int, Float, Str and Boolean constructors).
type Value = vector.Value

// Int boxes an int64 value.
func Int(x int64) Value { return vector.IntValue(x) }

// Float boxes a float64 value.
func Float(x float64) Value { return vector.FloatValue(x) }

// Str boxes a string value.
func Str(x string) Value { return vector.StrValue(x) }

// Boolean boxes a bool value.
func Boolean(x bool) Value { return vector.BoolValue(x) }

// ColumnDef declares one attribute of a stream or table.
type ColumnDef struct {
	Name string
	Type Type
}

// Col is a convenience constructor for ColumnDef.
func Col(name string, t Type) ColumnDef { return ColumnDef{Name: name, Type: t} }

// Mode selects how a continuous query executes.
type Mode = engine.Mode

// Execution modes.
const (
	// Incremental is the paper's plan-level incremental processing.
	Incremental = engine.Incremental
	// Reevaluation recomputes the full window every slide (DataCellR).
	Reevaluation = engine.Reevaluation
	// Auto selects per query between the two, preferring re-evaluation for
	// small windows and incremental processing for large ones — the hybrid
	// system the paper suggests in Section 4.2.
	Auto = engine.Auto
)

// Options configure a continuous query.
type Options struct {
	// Mode defaults to Incremental.
	Mode Mode
	// AutoThreshold overrides the Auto-mode window-size cutoff (tuples).
	AutoThreshold int64
	// Chunks > 1 processes each basic window in that many early chunks
	// (single-stream queries only).
	Chunks int
	// AdaptiveChunks enables the self-tuning chunk controller (Fig 8).
	AdaptiveChunks bool
	// Parallelism bounds the worker goroutines this query may use for
	// intra-query parallelism (incremental mode): independent basic-window
	// fragments of buffered slides evaluate concurrently over the shared
	// segment store. 0 inherits the DB default (SetParallelism), 1 forces
	// sequential evaluation. Results are identical at any setting; see
	// docs/ARCHITECTURE.md and the README "Tuning" section.
	Parallelism int
	// PrivateFragments opts this query out of the shared-plan catalog:
	// its per-slide window fragments are evaluated privately even when
	// other standing queries on the stream compute the identical fragment.
	// The default (sharing on) evaluates each canonical fragment once per
	// slide and fans the partial into every subscriber's private merge;
	// results are bit-identical either way. See Query.Explain.
	PrivateFragments bool
	// PrivateMergeTails opts this query out of merge-tail sharing while
	// leaving fragment sharing on: the query always runs its own concat +
	// grouped re-group over the window even when other subscribers compute
	// an identical merge head (same fragment, window length and
	// group/aggregate shape — HAVING and projection constants excluded).
	// The default (sharing on) computes each canonical head once per slide
	// and every subscriber applies only its residual tail. Implied by
	// PrivateFragments; results are bit-identical either way.
	PrivateMergeTails bool
	// PrivateJoinPlan opts a stream-stream join query out of adaptive join
	// planning: the join matrix then evaluates in written order with the
	// right side building a fresh hash table per cell, instead of picking
	// the build side per cell greedily from exact post-filter cardinalities,
	// interning per-basic-window build tables, and zeroing cells with an
	// empty side. The benchmark baseline for the greedy planner; results
	// are bit-identical either way. See Query.Explain and the README
	// "Tuning" section.
	PrivateJoinPlan bool
}

// Result is one window result.
type Result struct {
	// Window is the 1-based window sequence number.
	Window int
	// Table holds the result rows.
	Table *exec.Table
	// Latency is the processing time of the step that emitted this window.
	Latency time.Duration
	// MainLatency, PartitionLatency and MergeLatency split Latency into the
	// three runtime stages: fragment work (the original plan's per-basic-
	// window / per-segment evaluation), the partitioned grouped re-group,
	// and the serial merge remainder (incremental mode; re-evaluation
	// reports the scan under Main and the combine under Merge).
	MainLatency, PartitionLatency, MergeLatency time.Duration
}

// Table re-exports the result table type.
type Table = exec.Table

// DB is a DataCell instance: catalog, baskets, factories and scheduler.
type DB struct {
	eng *engine.Engine

	// dir is the persistent data directory (nil for a memory instance —
	// see Open).
	dir *storage.Dir

	// recMu guards recovered, the replayed standing queries awaiting
	// adoption (see RecoveredQueries / AdoptRecovered).
	recMu     sync.Mutex
	recovered []*Query

	// clockMu guards clocks, the per-stream arrival-clock registry (see
	// streamClock).
	clockMu sync.Mutex
	clocks  map[string]*streamClock
}

// streamClock issues one stream's arrival timestamps. Its mutex is held
// across both stamping and the engine hand-off, so concurrent producers
// cannot land in the baskets out of timestamp order, and wall-clock stamps
// are strictly increasing per stream even when consecutive calls fall in
// the same microsecond — two batches can never interleave ambiguously
// inside a time window.
type streamClock struct {
	mu   sync.Mutex
	last int64
}

// stampLocked returns the next arrival stamp; c.mu must be held.
func (c *streamClock) stampLocked() int64 {
	now := time.Now().UnixMicro()
	if now <= c.last {
		now = c.last + 1
	}
	c.last = now
	return now
}

// noteLocked records an explicit event timestamp so a later wall-clock
// stamp cannot fall below it; c.mu must be held.
func (c *streamClock) noteLocked(ts int64) {
	if ts > c.last {
		c.last = ts
	}
}

// clock returns (creating on first use) the arrival clock of a stream.
// The stream's existence is checked only on a registry miss, so unknown
// names never grow the map and the steady-state path costs one mutex.
func (db *DB) clock(stream string) (*streamClock, error) {
	db.clockMu.Lock()
	defer db.clockMu.Unlock()
	c, ok := db.clocks[stream]
	if !ok {
		if _, exists := db.eng.StreamSchema(stream); !exists {
			return nil, fmt.Errorf("datacell: unknown stream %q", stream)
		}
		c = &streamClock{}
		db.clocks[stream] = c
	}
	return c, nil
}

// New creates an empty instance.
func New() *DB {
	return &DB{eng: engine.New(), clocks: map[string]*streamClock{}}
}

func toSchema(cols []ColumnDef) (catalog.Schema, error) {
	if len(cols) == 0 {
		return catalog.Schema{}, fmt.Errorf("datacell: at least one column required")
	}
	s := catalog.Schema{}
	for _, c := range cols {
		s.Cols = append(s.Cols, catalog.Column{Name: c.Name, Type: c.Type})
	}
	return s, nil
}

// RegisterStream declares a stream with the given columns.
func (db *DB) RegisterStream(name string, cols ...ColumnDef) error {
	s, err := toSchema(cols)
	if err != nil {
		return err
	}
	return db.eng.RegisterStream(name, s)
}

// MustRegisterStream is RegisterStream panicking on error.
func (db *DB) MustRegisterStream(name string, cols ...ColumnDef) {
	if err := db.RegisterStream(name, cols...); err != nil {
		panic(err)
	}
}

// RegisterTable declares a persistent table with the given columns.
func (db *DB) RegisterTable(name string, cols ...ColumnDef) error {
	s, err := toSchema(cols)
	if err != nil {
		return err
	}
	return db.eng.RegisterTable(name, s)
}

// MustRegisterTable is RegisterTable panicking on error.
func (db *DB) MustRegisterTable(name string, cols ...ColumnDef) {
	if err := db.RegisterTable(name, cols...); err != nil {
		panic(err)
	}
}

// InsertRows appends rows into a persistent table.
func (db *DB) InsertRows(table string, rows ...[]Value) error {
	if len(rows) == 0 {
		return nil
	}
	cols, err := rowsToCols(rows)
	if err != nil {
		return err
	}
	return db.eng.InsertTable(table, cols)
}

// validateEventTimes rejects the malformed explicit-timestamp batches that
// would otherwise corrupt basket ordering deep inside the engine: a
// timestamp count that does not match the row count, and timestamps that
// go backwards within the batch.
func validateEventTimes(api string, ts []int64, rows int) error {
	if len(ts) != rows {
		return fmt.Errorf("datacell: %s: %d timestamps for %d rows", api, len(ts), rows)
	}
	for i := 1; i < len(ts); i++ {
		if ts[i] < ts[i-1] {
			return fmt.Errorf("datacell: %s: non-monotonic timestamps (ts[%d]=%d < ts[%d]=%d)",
				api, i, ts[i], i-1, ts[i-1])
		}
	}
	return nil
}

// Append delivers stream tuples (the receptor side). All rows of one call
// share a single arrival timestamp — the wall clock in microseconds,
// bumped when needed so consecutive calls get strictly increasing stamps.
//
// Append is the row-oriented compatibility path: each field is boxed as a
// Value and transposed to columns before reaching the kernel. Hot ingest
// paths should build a Batch and use AppendBatch instead.
func (db *DB) Append(stream string, rows ...[]Value) error {
	if len(rows) == 0 {
		return nil
	}
	c, err := db.clock(stream)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	ts := make([]int64, len(rows))
	now := c.stampLocked()
	for i := range ts {
		ts[i] = now
	}
	return db.eng.AppendRows(stream, rows, ts)
}

// AppendAt delivers stream tuples with explicit event timestamps
// (microseconds), required for time-based windows with event-time
// semantics. It requires exactly one timestamp per row, in non-decreasing
// order.
func (db *DB) AppendAt(stream string, ts []int64, rows ...[]Value) error {
	if err := validateEventTimes("AppendAt", ts, len(rows)); err != nil {
		return err
	}
	if len(rows) == 0 {
		return nil
	}
	c, err := db.clock(stream)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := db.eng.AppendRows(stream, rows, ts); err != nil {
		return err
	}
	c.noteLocked(ts[len(ts)-1])
	return nil
}

// SetWatermark advances a stream's event-time watermark so time windows
// can close without further tuples.
func (db *DB) SetWatermark(stream string, tsMicros int64) error {
	return db.eng.SetWatermark(stream, tsMicros)
}

func rowsToCols(rows [][]Value) ([]*vector.Vector, error) {
	arity := len(rows[0])
	cols := make([]*vector.Vector, arity)
	for i := range cols {
		cols[i] = vector.New(rows[0][i].Typ, len(rows))
	}
	for _, r := range rows {
		if len(r) != arity {
			return nil, fmt.Errorf("datacell: ragged rows (%d vs %d values)", len(r), arity)
		}
		for i, v := range r {
			cols[i].AppendValue(v)
		}
	}
	return cols, nil
}

// Query is a registered continuous query.
//
// Results leave a query through exactly one delivery mechanism at a time:
// an OnResult callback, a Subscribe channel, a Results2 iterator, or — when
// none is installed — an internal buffer drained by Results or replayed by
// the next sink.
type Query struct {
	db *DB
	cq *engine.ContinuousQuery

	mu       sync.Mutex
	handler  func(*Result)
	sub      *subscription
	buffered []*Result

	// delivered and dropped accumulate across subscriptions (each new
	// Subscribe wires the same counters), so Stats survives resubscribes.
	delivered, dropped atomic.Int64
}

// Register compiles and installs a continuous query written in the
// DataCell SQL dialect (see the package documentation and README).
func (db *DB) Register(query string, opts Options) (*Query, error) {
	q := &Query{db: db}
	cq, err := db.eng.Register(query, engine.Options{
		Mode:              opts.Mode,
		AutoThreshold:     opts.AutoThreshold,
		Chunks:            opts.Chunks,
		AdaptiveChunks:    opts.AdaptiveChunks,
		Parallelism:       opts.Parallelism,
		PrivateFragments:  opts.PrivateFragments,
		PrivateMergeTails: opts.PrivateMergeTails,
		PrivateJoinPlan:   opts.PrivateJoinPlan,
		OnResult: func(r *engine.Result) {
			q.deliver(&Result{
				Window:           r.Window,
				Table:            r.Table,
				Latency:          time.Duration(r.StepNS),
				MainLatency:      time.Duration(r.Stats.MainNS),
				PartitionLatency: time.Duration(r.Stats.PartitionNS),
				MergeLatency:     time.Duration(r.Stats.MergeNS),
			})
		},
	})
	if err != nil {
		return nil, err
	}
	q.cq = cq
	return q, nil
}

// deliver routes one result to the active sink — handler, subscription, or
// the internal buffer. It runs on the goroutine executing the query step
// (a scheduler worker or the Pump caller), so a Block-policy subscription
// applies backpressure to the query itself.
func (q *Query) deliver(r *Result) {
	for {
		q.mu.Lock()
		h, s := q.handler, q.sub
		if h == nil && s == nil {
			q.buffered = append(q.buffered, r)
			q.mu.Unlock()
			return
		}
		q.mu.Unlock()
		if h != nil {
			h(r)
			return
		}
		if s.deliver(r) {
			return
		}
		// The subscription shut down mid-delivery (ctx cancelled / query
		// closed). If it is still the installed sink, keep the result so
		// the next sink replays it in order; if a new sink already took
		// over, loop and deliver to that one instead (its backlog replay
		// gate keeps r behind any older buffered results).
		q.mu.Lock()
		if q.handler == nil && (q.sub == nil || q.sub == s) {
			q.buffered = append(q.buffered, r)
			q.mu.Unlock()
			return
		}
		q.mu.Unlock()
	}
}

// OnResult installs the result handler; any results buffered before the
// handler was installed are replayed first (in order). OnResult panics if
// the query has an active Subscribe channel — a query has one delivery
// mechanism at a time.
func (q *Query) OnResult(h func(*Result)) {
	q.mu.Lock()
	for {
		if old := q.sub; old != nil {
			if !old.isClosed() {
				q.mu.Unlock()
				panic("datacell: OnResult on a query with an active subscription")
			}
			q.mu.Unlock()
			// A cancelled predecessor may still be restoring its unsent
			// backlog tail into q.buffered; wait so the replay below
			// includes it (same discipline as Subscribe).
			<-old.ready
			q.mu.Lock()
			if q.sub == old {
				q.sub = nil
			}
			continue
		}
		backlog := q.buffered
		q.buffered = nil
		if len(backlog) == 0 {
			// Only install the handler once the buffer is drained — a
			// result produced mid-replay buffers and is replayed on the
			// next pass, so h never runs concurrently with the replay and
			// results keep their order.
			q.handler = h
			q.mu.Unlock()
			return
		}
		q.mu.Unlock()
		for _, r := range backlog {
			h(r)
		}
		q.mu.Lock()
	}
}

// Results drains and returns the results buffered so far (only meaningful
// when no OnResult handler is installed).
func (q *Query) Results() []*Result {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := q.buffered
	q.buffered = nil
	return out
}

// Windows reports how many window results have been produced.
func (q *Query) Windows() int { return q.cq.Windows() }

// SQL returns the query text.
func (q *Query) SQL() string { return q.cq.SQL }

// Mode returns the execution mode.
func (q *Query) Mode() Mode { return q.cq.Mode }

// Explain returns a human-readable description of the query's physical
// plan. For incremental queries it includes the rewrite's stage programs,
// the canonical fragment fingerprint, and whether the pre-merge fragment
// is currently shared with other standing queries ("shared×N").
func (q *Query) Explain() string { return q.cq.Explain() }

// Err returns the terminal error of this query's worker goroutine, or nil
// while the query is healthy. A failed query stops producing results until
// the scheduler is restarted (Stop then Run), which retries it.
func (q *Query) Err() error { return q.cq.Err() }

// Fingerprint returns the canonical fingerprint of the query's pre-merge
// fragment — the shared-plan catalog's interning key rendered as 16 hex
// digits — or "" when the plan has no canonical fragment (re-evaluation
// mode, joins, landmark windows). Queries with equal fingerprints compute
// bit-identical per-slide partials; the serving tier uses the fingerprint
// to label shared result streams in /metrics and QUERIES listings.
func (q *Query) Fingerprint() string { return q.cq.Fingerprint() }

// QueryStats is a point-in-time snapshot of one continuous query's
// cumulative runtime counters — the serving tier's /metrics export
// surface. All durations are cumulative across the query's lifetime.
type QueryStats struct {
	// Windows is the number of window results emitted.
	Windows int
	// Fragment, Shared, Scatter, Partition, Stitch, Merge and Total mirror
	// the engine's StageBreakdown: fragment work the query evaluated
	// itself, time spent adopting shared work (fragment partials and merge
	// heads) computed by other queries, the parallel hash-scatter feeding
	// the shards, the partitioned grouped re-group, the tree stitch that
	// restores serial group order, the serial merge remainder, and total
	// step wall time.
	Fragment, Shared, Scatter, Partition, Stitch, Merge, Total time.Duration
	// AdoptedSlides and LedSlides count slides the query adopted from the
	// shared-plan catalog versus evaluated itself and published.
	AdoptedSlides, LedSlides int64
	// AdoptedTails and LedTails count window merges whose shared merge
	// head was adopted from the tail catalog versus computed and published
	// by this query (see Options.PrivateMergeTails).
	AdoptedTails, LedTails int64
	// BatchedSlides counts slides drained through the intra-query parallel
	// StepBatch path.
	BatchedSlides int64
	// Join is the join-matrix update share of Fragment (stream-stream join
	// queries only): adaptive planning, build tables, cell evaluation.
	// BuildsReused counts matrix cells served by an interned per-basic-
	// window build table instead of building one — zero with
	// Options.PrivateJoinPlan (see Query.Explain).
	Join         time.Duration
	BuildsReused int64
	// Delivered and Dropped count results handed to this query's
	// subscription channels versus discarded by a DropOldest subscription.
	Delivered, Dropped int64
}

// Stats returns a snapshot of the query's cumulative runtime counters.
// It is safe to call concurrently with a running scheduler.
func (q *Query) Stats() QueryStats {
	st := q.cq.StageBreakdown()
	adopted, led := q.cq.SharedSlides()
	tailsAdopted, tailsLed := q.cq.SharedTails()
	return QueryStats{
		Windows:       q.cq.Windows(),
		Fragment:      time.Duration(st.FragmentNS),
		Shared:        time.Duration(st.SharedNS),
		Scatter:       time.Duration(st.ScatterNS),
		Partition:     time.Duration(st.PartitionNS),
		Stitch:        time.Duration(st.StitchNS),
		Merge:         time.Duration(st.MergeNS),
		Total:         time.Duration(st.TotalNS),
		AdoptedSlides: adopted,
		LedSlides:     led,
		AdoptedTails:  tailsAdopted,
		LedTails:      tailsLed,
		BatchedSlides: q.cq.BatchedSlides(),
		Join:          time.Duration(st.JoinNS),
		BuildsReused:  st.BuildsReused,
		Delivered:     q.delivered.Load(),
		Dropped:       q.dropped.Load(),
	}
}

// IngestDuration reports the cumulative wall time spent in receptor-side
// loading (Append/AppendBatch and friends) across all streams — the
// ingest half of the /metrics export.
func (db *DB) IngestDuration() time.Duration { return time.Duration(db.eng.LoadNS()) }

// Close deregisters the query. If the scheduler is running, the query's
// worker is stopped first (blocking until any in-flight step finishes).
// Close may be called from inside the query's own OnResult callback —
// e.g. to stop after the first result — in which case the in-flight step
// finishes just after Close returns. An active Subscribe channel is closed
// (which also ends a ranging Results2 iterator).
func (q *Query) Close() {
	q.mu.Lock()
	s := q.sub
	q.mu.Unlock()
	if s != nil {
		s.close()
	}
	q.db.eng.Deregister(q.cq)
}

// SetParallelism sets the DB-wide default for intra-query parallelism:
// queries registered afterwards with Options.Parallelism == 0 evaluate
// their independent basic-window fragments over up to n workers (n <= 1
// means sequential). A natural setting is runtime.NumCPU(). Results are
// unaffected — parallel and sequential evaluation are bit-identical.
func (db *DB) SetParallelism(n int) { db.eng.SetDefaultParallelism(n) }

// QueryOnce runs a one-time query over persistent tables.
func (db *DB) QueryOnce(query string) (*Table, error) { return db.eng.QueryOnce(query) }

// Pump synchronously fires every query that has enough buffered data and
// returns the number of steps executed, in registration order on the
// calling goroutine. Use it for deterministic processing (tests,
// benchmarks, batch drivers).
func (db *DB) Pump() (int, error) { return db.eng.Pump() }

// PumpParallel is the concurrent form of Pump: queries fire in parallel
// over a bounded pool of at most workers goroutines (workers <= 0 means
// GOMAXPROCS). Each query's steps stay ordered; cross-query interleaving
// does not. It returns once no query can fire anymore.
func (db *DB) PumpParallel(workers int) (int, error) { return db.eng.PumpParallel(workers) }

// Run starts the concurrent factory scheduler: every registered query gets
// its own worker goroutine, woken by the receptor side only when one of
// its input streams receives data, so independent queries process in
// parallel. Queries registered while running get workers immediately.
//
// Run is idempotent and restartable: after Stop, calling Run again clears
// any stored error (see Err) and resumes all queries from their buffered
// state. A query whose step fails stops producing (its error is reported
// by Err and Query.Err) without affecting other queries.
func (db *DB) Run() { db.eng.Start() }

// Stop halts the scheduler, blocking until in-flight window steps finish
// (no-op when not running). Buffered data stays in the baskets: a later
// Run or Pump resumes exactly where the workers left off. Per-query
// worker errors survive Stop and stay available via Err until the next
// Run. Stop may be called from inside an OnResult callback; the calling
// query's in-flight step then finishes just after Stop returns.
func (db *DB) Stop() { db.eng.Stop() }

// Running reports whether the background scheduler is active.
func (db *DB) Running() bool { return db.eng.Running() }

// Err returns the first error any query worker has hit since the last Run
// (nil while all factories are healthy). Errors survive Stop — and Close
// of the failed query — and are cleared by the next Run, which retries
// the failed queries.
func (db *DB) Err() error { return db.eng.Err() }
