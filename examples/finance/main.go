// Finance: the paper's multi-stream scenario — a sliding-window equi-join
// between two streams with aggregates on both sides (Q2), plus a landmark
// query (Q3) over one of them.
//
// Orders and trades arrive on separate streams; the join matches them on
// instrument id within aligned 1024-tuple windows sliding by 128. The
// incremental plan replicates the join across basic-window pairs and only
// evaluates the new row/column of the matrix per slide (Fig 3e).
//
// Run with: go run ./examples/finance
package main

import (
	"fmt"
	"math/rand"

	"datacell"
)

func main() {
	db := datacell.New()
	db.MustRegisterStream("orders",
		datacell.Col("qty", datacell.Int64),
		datacell.Col("instr", datacell.Int64),
	)
	db.MustRegisterStream("trades",
		datacell.Col("price", datacell.Int64),
		datacell.Col("instr", datacell.Int64),
	)

	// Q2: largest order quantity and average trade price among matched
	// instrument events in the current window.
	joined, err := db.Register(
		`SELECT max(orders.qty), avg(trades.price)
		 FROM orders [RANGE 1024 SLIDE 128], trades [RANGE 1024 SLIDE 128]
		 WHERE orders.instr = trades.instr`,
		datacell.Options{},
	)
	if err != nil {
		panic(err)
	}

	// Q3: landmark max price since market open, reported every 256 trades.
	landmark, err := db.Register(
		`SELECT max(price), count(*) FROM trades [LANDMARK SLIDE 256] WHERE price > 0`,
		datacell.Options{},
	)
	if err != nil {
		panic(err)
	}

	rng := rand.New(rand.NewSource(42))
	for batch := 0; batch < 40; batch++ {
		var orders, trades [][]datacell.Value
		for i := 0; i < 128; i++ {
			instr := rng.Int63n(50)
			orders = append(orders, []datacell.Value{
				datacell.Int(1 + rng.Int63n(1000)), datacell.Int(instr),
			})
			trades = append(trades, []datacell.Value{
				datacell.Int(100 + rng.Int63n(900)), datacell.Int(rng.Int63n(50)),
			})
		}
		if err := db.Append("orders", orders...); err != nil {
			panic(err)
		}
		if err := db.Append("trades", trades...); err != nil {
			panic(err)
		}
		if _, err := db.Pump(); err != nil {
			panic(err)
		}
	}

	for _, r := range joined.Results() {
		if r.Window%8 == 1 {
			fmt.Printf("join window %2d: max(qty)=%s avg(price)=%s (step %v, merge %v)\n",
				r.Window,
				r.Table.Cols[0].Get(0), r.Table.Cols[1].Get(0),
				r.Latency.Round(0), r.MergeLatency.Round(0))
		}
	}
	for _, r := range landmark.Results() {
		if r.Window%5 == 0 {
			fmt.Printf("landmark after %5s trades: max(price)=%s\n",
				r.Table.Cols[1].Get(0), r.Table.Cols[0].Get(0))
		}
	}
	fmt.Printf("join windows: %d, landmark reports: %d\n", joined.Windows(), landmark.Windows())
}
