// Finance: the paper's multi-stream scenario — a sliding-window equi-join
// between two streams with aggregates on both sides (Q2), plus a landmark
// query (Q3) over one of them.
//
// Orders and trades arrive on separate streams; the join matches them on
// instrument id within aligned 1024-tuple windows sliding by 128. The
// incremental plan replicates the join across basic-window pairs and only
// evaluates the new row/column of the matrix per slide (Fig 3e).
//
// Both streams are fed through reused columnar Batch builders (typed
// appenders, no per-value boxing) and both queries deliver their results
// over Subscribe channels. The two streams share nothing; each query
// reads its stream's shared segment log through its own cursor.
//
// Run with: go run ./examples/finance
package main

import (
	"context"
	"fmt"
	"math/rand"

	"datacell"
)

// collect drains a subscription into a slice, signalling completion on the
// returned channel once the subscription closes.
func collect(results <-chan *datacell.Result) (*[]*datacell.Result, chan struct{}) {
	out := &[]*datacell.Result{}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for r := range results {
			*out = append(*out, r)
		}
	}()
	return out, done
}

func main() {
	db := datacell.New()
	db.MustRegisterStream("orders",
		datacell.Col("qty", datacell.Int64),
		datacell.Col("instr", datacell.Int64),
	)
	db.MustRegisterStream("trades",
		datacell.Col("price", datacell.Int64),
		datacell.Col("instr", datacell.Int64),
	)

	// Q2: largest order quantity and average trade price among matched
	// instrument events in the current window.
	joined, err := db.Register(
		`SELECT max(orders.qty), avg(trades.price)
		 FROM orders [RANGE 1024 SLIDE 128], trades [RANGE 1024 SLIDE 128]
		 WHERE orders.instr = trades.instr`,
		datacell.Options{},
	)
	if err != nil {
		panic(err)
	}

	// Q3: landmark max price since market open, reported every 256 trades.
	landmark, err := db.Register(
		`SELECT max(price), count(*) FROM trades [LANDMARK SLIDE 256] WHERE price > 0`,
		datacell.Options{},
	)
	if err != nil {
		panic(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	joinCh, err := joined.Subscribe(ctx, datacell.SubOptions{Buffer: 64})
	if err != nil {
		panic(err)
	}
	landCh, err := landmark.Subscribe(ctx, datacell.SubOptions{Buffer: 64})
	if err != nil {
		panic(err)
	}
	joinResults, joinDone := collect(joinCh)
	landResults, landDone := collect(landCh)

	// Receptor side: one reused batch per stream, typed column appenders.
	orderBatch, err := db.NewBatch("orders")
	if err != nil {
		panic(err)
	}
	qty, oInstr := orderBatch.Int64Col("qty"), orderBatch.Int64Col("instr")
	tradeBatch, err := db.NewBatch("trades")
	if err != nil {
		panic(err)
	}
	price, tInstr := tradeBatch.Int64Col("price"), tradeBatch.Int64Col("instr")

	rng := rand.New(rand.NewSource(42))
	for batch := 0; batch < 40; batch++ {
		orderBatch.Reset()
		tradeBatch.Reset()
		for i := 0; i < 128; i++ {
			qty.Append(1 + rng.Int63n(1000))
			oInstr.Append(rng.Int63n(50))
			price.Append(100 + rng.Int63n(900))
			tInstr.Append(rng.Int63n(50))
		}
		if err := db.AppendBatch("orders", orderBatch); err != nil {
			panic(err)
		}
		if err := db.AppendBatch("trades", tradeBatch); err != nil {
			panic(err)
		}
		if _, err := db.Pump(); err != nil {
			panic(err)
		}
	}
	cancel()
	<-joinDone
	<-landDone

	for _, r := range *joinResults {
		if r.Window%8 == 1 {
			fmt.Printf("join window %2d: max(qty)=%s avg(price)=%s (step %v, merge %v)\n",
				r.Window,
				r.Table.Cols[0].Get(0), r.Table.Cols[1].Get(0),
				r.Latency.Round(0), r.MergeLatency.Round(0))
		}
	}
	for _, r := range *landResults {
		if r.Window%5 == 0 {
			fmt.Printf("landmark after %5s trades: max(price)=%s\n",
				r.Table.Cols[1].Get(0), r.Table.Cols[0].Get(0))
		}
	}
	fmt.Printf("join windows: %d, landmark reports: %d\n", joined.Windows(), landmark.Windows())
}
