// Sensors: time-based sliding windows with event-time semantics and the
// background scheduler.
//
// A fleet of temperature sensors reports readings with event timestamps;
// a continuous query maintains the per-room average over the last 10
// seconds, sliding every 2 seconds. Empty 2-second slots (a sensor going
// quiet) are handled as empty basic windows, exactly as in the paper's
// time-based window design.
//
// Run with: go run ./examples/sensors
package main

import (
	"fmt"
	"math/rand"
	"time"

	"datacell"
)

func main() {
	db := datacell.New()
	db.MustRegisterStream("temps",
		datacell.Col("room", datacell.Int64),
		datacell.Col("celsius", datacell.Float64),
	)

	q, err := db.Register(
		`SELECT room, avg(celsius), count(*) FROM temps [RANGE 10 SECONDS SLIDE 2 SECONDS] GROUP BY room ORDER BY room`,
		datacell.Options{},
	)
	if err != nil {
		panic(err)
	}
	q.OnResult(func(r *datacell.Result) {
		fmt.Printf("-- 10s window #%d --\n%s", r.Window, r.Table)
	})

	db.Run()
	defer db.Stop()

	// Simulate 60 seconds of sensor traffic (event time, replayed fast).
	rng := rand.New(rand.NewSource(7))
	base := time.Date(2013, 3, 18, 9, 0, 0, 0, time.UTC).UnixMicro()
	eventTime := base
	for i := 0; i < 600; i++ {
		eventTime += rng.Int63n(200_000) // up to 0.2s between readings
		room := rng.Int63n(3)
		temp := 18 + 4*rng.Float64() + float64(room)
		if err := db.AppendAt("temps", []int64{eventTime},
			[]datacell.Value{datacell.Int(room), datacell.Float(temp)}); err != nil {
			panic(err)
		}
	}
	// Close the final windows.
	if err := db.SetWatermark("temps", eventTime+30_000_000); err != nil {
		panic(err)
	}
	// Give the background scheduler a moment to drain, then stop.
	time.Sleep(100 * time.Millisecond)
	fmt.Printf("emitted %d windows over 60s of sensor data\n", q.Windows())
}
