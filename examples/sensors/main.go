// Sensors: time-based sliding windows with event-time semantics, columnar
// batch ingest, and a cancellable result subscription.
//
// A fleet of temperature sensors reports readings with event timestamps;
// a continuous query maintains the per-room average over the last 10
// seconds, sliding every 2 seconds. Empty 2-second slots (a sensor going
// quiet) are handled as empty basic windows, exactly as in the paper's
// time-based window design.
//
// Readings are staged in a reused datacell.Batch through typed column
// appenders (no per-value boxing) and delivered 50 at a time with
// AppendBatchAt; results arrive on a Query.Subscribe channel that closes
// when the context is cancelled.
//
// Run with: go run ./examples/sensors
package main

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"datacell"
)

func main() {
	db := datacell.New()
	db.MustRegisterStream("temps",
		datacell.Col("room", datacell.Int64),
		datacell.Col("celsius", datacell.Float64),
	)

	q, err := db.Register(
		`SELECT room, avg(celsius), count(*) FROM temps [RANGE 10 SECONDS SLIDE 2 SECONDS] GROUP BY room ORDER BY room`,
		datacell.Options{},
	)
	if err != nil {
		panic(err)
	}

	// Subscribe with a small buffer and Block backpressure: if this
	// consumer falls behind, the query slows down instead of dropping
	// windows. Cancelling the context closes the channel.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	results, err := q.Subscribe(ctx, datacell.SubOptions{Buffer: 16})
	if err != nil {
		panic(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for r := range results {
			fmt.Printf("-- 10s window #%d --\n%s", r.Window, r.Table)
		}
	}()

	db.Run()

	// Simulate 60 seconds of sensor traffic (event time, replayed fast),
	// staged through one reused columnar batch.
	batch, err := db.NewBatch("temps")
	if err != nil {
		panic(err)
	}
	room := batch.Int64Col("room")
	celsius := batch.Float64Col("celsius")
	ts := make([]int64, 0, 50)

	flush := func() {
		if batch.Len() == 0 {
			return
		}
		if err := db.AppendBatchAt("temps", ts, batch); err != nil {
			panic(err)
		}
		batch.Reset()
		ts = ts[:0]
	}

	rng := rand.New(rand.NewSource(7))
	base := time.Date(2013, 3, 18, 9, 0, 0, 0, time.UTC).UnixMicro()
	eventTime := base
	for i := 0; i < 600; i++ {
		eventTime += rng.Int63n(200_000) // up to 0.2s between readings
		r := rng.Int63n(3)
		room.Append(r)
		celsius.Append(18 + 4*rng.Float64() + float64(r))
		ts = append(ts, eventTime)
		if batch.Len() == 50 {
			flush()
		}
	}
	flush()
	// Close the final windows.
	if err := db.SetWatermark("temps", eventTime+30_000_000); err != nil {
		panic(err)
	}
	// Give the background scheduler a moment to drain, then stop.
	time.Sleep(100 * time.Millisecond)
	db.Stop()
	cancel()
	<-done
	fmt.Printf("emitted %d windows over 60s of sensor data\n", q.Windows())
}
