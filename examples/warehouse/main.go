// Warehouse: the paper's motivating scenario — online analysis of incoming
// data combined with data already stored in the warehouse. A stream of
// sales events is joined against a persistent dimension table inside the
// same engine, and one-time queries run against the stored data alongside
// the continuous one ("combine continuous querying ... with traditional
// querying", Section 1).
//
// Sales are ingested through a reused columnar Batch (typed appenders)
// and window results arrive on a Subscribe channel.
//
// Run with: go run ./examples/warehouse
package main

import (
	"context"
	"fmt"
	"math/rand"

	"datacell"
)

func main() {
	db := datacell.New()
	db.MustRegisterTable("products",
		datacell.Col("pid", datacell.Int64),
		datacell.Col("category", datacell.String),
	)
	db.MustRegisterStream("sales",
		datacell.Col("pid", datacell.Int64),
		datacell.Col("amount", datacell.Int64),
	)

	// Load the dimension table (the "existing data" of the warehouse).
	categories := []string{"books", "games", "tools", "garden"}
	var rows [][]datacell.Value
	for pid := 0; pid < 40; pid++ {
		rows = append(rows, []datacell.Value{
			datacell.Int(int64(pid)), datacell.Str(categories[pid%len(categories)]),
		})
	}
	if err := db.InsertRows("products", rows...); err != nil {
		panic(err)
	}

	// Continuous query: revenue per category over the last 500 sales,
	// refreshed every 100 — a stream-table join processed incrementally
	// (the table side is hash-built once per step and probed per basic
	// window).
	q, err := db.Register(
		`SELECT products.category, sum(sales.amount)
		 FROM sales [RANGE 500 SLIDE 100], products
		 WHERE sales.pid = products.pid
		 GROUP BY products.category
		 ORDER BY products.category`,
		datacell.Options{},
	)
	if err != nil {
		panic(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	results, err := q.Subscribe(ctx, datacell.SubOptions{Buffer: 16})
	if err != nil {
		panic(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for r := range results {
			fmt.Printf("revenue per category, window %d:\n%s\n", r.Window, r.Table)
		}
	}()

	// Receptor side: one reused columnar batch, no per-value boxing.
	batch, err := db.NewBatch("sales")
	if err != nil {
		panic(err)
	}
	pid, amount := batch.Int64Col("pid"), batch.Int64Col("amount")
	rng := rand.New(rand.NewSource(3))
	for b := 0; b < 10; b++ {
		batch.Reset()
		for i := 0; i < 100; i++ {
			pid.Append(rng.Int63n(40))
			amount.Append(5 + rng.Int63n(95))
		}
		if err := db.AppendBatch("sales", batch); err != nil {
			panic(err)
		}
		if _, err := db.Pump(); err != nil {
			panic(err)
		}
	}
	cancel()
	<-done

	// A one-time query over the stored dimension data, served by the same
	// kernel.
	tbl, err := db.QueryOnce(`SELECT category, count(*) FROM products GROUP BY category ORDER BY category`)
	if err != nil {
		panic(err)
	}
	fmt.Printf("one-time query over the warehouse:\n%s", tbl)
}
