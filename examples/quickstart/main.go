// Quickstart: register a continuous sliding-window query over one stream
// and watch incremental results arrive as tuples are appended.
//
// The query is the paper's Q1 shape:
//
//	SELECT x1, sum(x2) FROM readings [RANGE 100 SLIDE 20]
//	WHERE x1 > 2 GROUP BY x1
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"

	"datacell"
)

func main() {
	db := datacell.New()
	db.MustRegisterStream("readings",
		datacell.Col("x1", datacell.Int64),
		datacell.Col("x2", datacell.Int64),
	)

	q, err := db.Register(
		`SELECT x1, sum(x2) FROM readings [RANGE 100 SLIDE 20] WHERE x1 > 2 GROUP BY x1`,
		datacell.Options{}, // Mode defaults to Incremental
	)
	if err != nil {
		panic(err)
	}
	q.OnResult(func(r *datacell.Result) {
		fmt.Printf("window %d (%d groups, processed in %v):\n%s\n",
			r.Window, r.Table.NumRows(), r.Latency.Round(0), r.Table)
	})

	// Feed 200 random tuples in small batches; windows fire as soon as the
	// stream has advanced one slide.
	rng := rand.New(rand.NewSource(1))
	for batch := 0; batch < 20; batch++ {
		rows := make([][]datacell.Value, 10)
		for i := range rows {
			rows[i] = []datacell.Value{
				datacell.Int(rng.Int63n(6)),
				datacell.Int(rng.Int63n(100)),
			}
		}
		if err := db.Append("readings", rows...); err != nil {
			panic(err)
		}
		if _, err := db.Pump(); err != nil {
			panic(err)
		}
	}
	fmt.Printf("produced %d windows over 200 tuples\n", q.Windows())
}
