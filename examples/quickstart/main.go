// Quickstart: register a continuous sliding-window query over one stream
// and watch incremental results arrive as tuples are appended.
//
// The query is the paper's Q1 shape:
//
//	SELECT x1, sum(x2) FROM readings [RANGE 100 SLIDE 20]
//	WHERE x1 > 2 GROUP BY x1
//
// Ingest uses the columnar Batch builder (typed appenders, no per-value
// boxing) and results arrive on a cancellable Subscribe channel.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"math/rand"

	"datacell"
)

func main() {
	db := datacell.New()
	db.MustRegisterStream("readings",
		datacell.Col("x1", datacell.Int64),
		datacell.Col("x2", datacell.Int64),
	)

	q, err := db.Register(
		`SELECT x1, sum(x2) FROM readings [RANGE 100 SLIDE 20] WHERE x1 > 2 GROUP BY x1`,
		datacell.Options{}, // Mode defaults to Incremental
	)
	if err != nil {
		panic(err)
	}

	// Results leave the query through a channel; cancelling the context
	// closes it.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	results, err := q.Subscribe(ctx, datacell.SubOptions{Buffer: 16})
	if err != nil {
		panic(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for r := range results {
			fmt.Printf("window %d (%d groups, processed in %v):\n%s\n",
				r.Window, r.Table.NumRows(), r.Latency.Round(0), r.Table)
		}
	}()

	// Feed 200 random tuples in small batches through one reused columnar
	// batch; windows fire as soon as the stream has advanced one slide.
	batch, err := db.NewBatch("readings")
	if err != nil {
		panic(err)
	}
	x1 := batch.Int64Col("x1")
	x2 := batch.Int64Col("x2")
	rng := rand.New(rand.NewSource(1))
	for b := 0; b < 20; b++ {
		batch.Reset()
		for i := 0; i < 10; i++ {
			x1.Append(rng.Int63n(6))
			x2.Append(rng.Int63n(100))
		}
		if err := db.AppendBatch("readings", batch); err != nil {
			panic(err)
		}
		if _, err := db.Pump(); err != nil {
			panic(err)
		}
	}
	cancel()
	<-done
	fmt.Printf("produced %d windows over 200 tuples\n", q.Windows())
}
