package datacell

import (
	"context"
	"fmt"
	"io"
)

// Source produces stream tuples in columnar form — the receptor-side half
// of the unified Source/Sink I/O surface. Implementations fill the batch
// they are handed (via its typed appenders), so every producer — csv
// files, synthetic generators, network feeds — funnels into the same
// zero-boxing ingest path. See internal/workload for the csv and generator
// sources.
type Source interface {
	// ReadBatch appends up to max rows to b and reports how many rows it
	// added. It returns io.EOF — possibly alongside a final non-empty
	// batch — when the source is exhausted. On any other error the batch
	// contents are undefined and are discarded by the caller.
	ReadBatch(b *Batch, max int) (int, error)
}

// attachBatchRows is the default per-AppendBatch row budget used by
// Attach: large enough to amortize per-batch costs, small enough to keep
// results flowing while a long source loads.
const attachBatchRows = 4096

// AttachOptions tune an Attach feed.
type AttachOptions struct {
	// BatchRows caps the rows handed to one AppendBatch (and thus sharing
	// one arrival timestamp). 0 means the 4096-row default.
	BatchRows int
	// AfterBatch, when non-nil, runs after every AppendBatch — e.g. a
	// synchronous Pump so results interleave with loading. An error aborts
	// the attach.
	AfterBatch func() error
}

// Attach drives a Source into a stream until the source is exhausted or
// ctx is cancelled, reusing one batch for the whole feed. It returns the
// number of rows ingested. Attach only appends; run the scheduler (Run),
// Pump, or an AfterBatch hook to make the subscribed queries fire.
func (db *DB) Attach(ctx context.Context, stream string, src Source, opts ...AttachOptions) (int64, error) {
	var o AttachOptions
	if len(opts) > 0 {
		o = opts[0]
	}
	if o.BatchRows <= 0 {
		o.BatchRows = attachBatchRows
	}
	b, err := db.NewBatch(stream)
	if err != nil {
		return 0, err
	}
	var total int64
	for {
		if err := ctx.Err(); err != nil {
			return total, err
		}
		n, rerr := src.ReadBatch(b, o.BatchRows)
		if rerr != nil && rerr != io.EOF {
			return total, fmt.Errorf("datacell: attach %s: %w", stream, rerr)
		}
		if n > 0 {
			if err := db.AppendBatch(stream, b); err != nil {
				return total, err
			}
			total += int64(n)
			b.Reset()
			if o.AfterBatch != nil {
				if err := o.AfterBatch(); err != nil {
					return total, err
				}
			}
		}
		if rerr == io.EOF {
			return total, nil
		}
	}
}
